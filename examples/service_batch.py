#!/usr/bin/env python3
"""Batch-simulate the benchmark suite through the job service.

Submits a timing run for every benchmark in the suite to a running
``repro serve`` instance (starting a private one if none is found),
submits every job a *second* time from a different client name to show
content-addressed dedup in action, polls ``/metrics`` while the queue
drains, and prints a throughput summary.

Run:  python examples/service_batch.py [--quick N] [--workers W]
      --quick N    only the first N benchmarks (default: whole suite)
      --workers W  workers for a private server (default: 4)

An already-running service is used when ``REPRO_SERVICE`` is set or a
server has written its endpoint discovery file; otherwise a private
server is started on a temporary journal and drained on exit.
"""

import argparse
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.service.client import ServiceClient, resolve_endpoint
from repro.workloads import all_profiles


def find_or_start_server(workers: int):
    """Return (client, server-process-or-None, journal-dir-or-None)."""
    try:
        resolve_endpoint()
    except ValueError:
        pass
    else:
        client = ServiceClient(client_name="service-batch")
        client.handshake()
        print(f"using running service at {client.host}:{client.port}")
        return client, None, None

    journal = Path(tempfile.mkdtemp(prefix="repro-service-batch-"))
    print(f"starting a private server (journal: {journal})")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--journal", str(journal), "--port", "0",
            "--workers", str(workers),
        ],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + 30
    while not (journal / "endpoint").exists():
        if proc.poll() is not None or time.monotonic() > deadline:
            raise SystemExit("server failed to start")
        time.sleep(0.05)
    client = ServiceClient(
        journal_dir=str(journal), client_name="service-batch"
    )
    return client, proc, journal


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--quick", type=int, default=None, metavar="N")
    parser.add_argument("--workers", type=int, default=4)
    args = parser.parse_args()

    uids = [p.uid for p in all_profiles()]
    if args.quick:
        uids = uids[: args.quick]

    client, proc, journal = find_or_start_server(args.workers)
    try:
        started = time.monotonic()

        # one timing run per benchmark...
        jobs = {}
        for uid in uids:
            job, deduped = client.submit("run", {"uid": uid})
            jobs[uid] = job["id"]

        # ...and the whole batch again from a second client: identical
        # specs hash to identical job keys, so nothing is re-executed
        twin = ServiceClient(
            endpoint=f"{client.host}:{client.port}",
            client_name="service-batch-twin",
        )
        deduplicated = sum(
            twin.submit("run", {"uid": uid})[1] for uid in uids
        )
        print(
            f"submitted {len(uids)} jobs twice; "
            f"{deduplicated}/{len(uids)} duplicates were deduplicated"
        )

        # poll /metrics while the pool works through the queue
        while True:
            metrics = client.metrics()
            done = metrics["jobs"]["completed"] + metrics["jobs"]["failed"]
            print(
                f"  queue={metrics['queue_depth']:3d} "
                f"in-flight={metrics['in_flight']} "
                f"completed={metrics['jobs']['completed']:3d} "
                f"dedup-hits={metrics['dedup']['hits']}"
            )
            if done >= len(uids):
                break
            time.sleep(1.0)

        elapsed = time.monotonic() - started
        failed = [
            uid for uid in uids
            if client.job(jobs[uid])["state"] != "done"
        ]
        for uid in failed:
            print(f"  FAILED: {uid} -> {client.job(jobs[uid])['error']}")
        print(
            f"all {len(uids) - len(failed)}/{len(uids)} jobs done in "
            f"{elapsed:.1f}s ({len(uids) / elapsed:.2f} jobs/s)"
        )

        exec_hist = client.metrics()["latency"]["exec"].get("run", {})
        mean = exec_hist.get("sum_s", 0.0) / max(1, exec_hist.get("count", 1))
        print(
            f"run-job latency: n={exec_hist.get('count', 0)} mean={mean:.2f}s"
        )
        if failed:
            raise SystemExit(1)
    finally:
        if proc is not None:
            print("draining the private server")
            try:
                client.shutdown()
                proc.wait(timeout=120)
            except Exception:
                proc.kill()


if __name__ == "__main__":
    main()
