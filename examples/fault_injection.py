#!/usr/bin/env python3
"""Fault injection demo: soft errors, detection, and recovery.

Part 1 injects register bit flips into a running benchmark under four
protocol variants and checks whether the final memory matches the
fault-free golden run:

* Turnstile (full quarantine)          -> always recovers;
* WAR-free fast release                -> always recovers;
* full Turnpike (fast release+coloring)-> always recovers;
* UNSAFE: checkpoint fast release with NO coloring -> silent data
  corruption, reproducing the paper's Figure 16 counter-example.

Part 2 widens the fault model: a mixed-target campaign strikes every
protected structure (registers, store buffer, CLQ, color maps,
checkpoint storage, PC, raw memory words — with occasional double-bit
events) under full Turnpike and prints the per-structure vulnerability
report. Every outcome must be *contained*: masked, recovered, or a
detected fail-stop — never silent corruption.

Run:  python examples/fault_injection.py [benchmark-uid] [num-injections]
"""

import sys

from repro import compile_program, load_workload, turnpike_config
from repro.faults import (
    CampaignResult,
    golden_memory,
    random_mixed_injections,
    run_protocol_campaigns,
    run_with_injection,
    turnpike_machine_config,
    vulnerability_report,
)
from repro.faults.campaign import _horizon


def main() -> None:
    uid = sys.argv[1] if len(sys.argv) > 1 else "SPLASH3.radix"
    count = int(sys.argv[2]) if len(sys.argv) > 2 else 30

    workload = load_workload(uid)
    compiled = compile_program(workload.program, turnpike_config())
    print(f"benchmark: {uid}  ({count} register bit flips per variant)")
    print("injecting the SAME faults under each protocol variant...\n")

    campaigns = run_protocol_campaigns(
        compiled, workload.fresh_memory(), wcdl=10, count=count, seed=2024
    )

    rows = (
        ("Turnstile (quarantine everything)", campaigns.turnstile),
        ("WAR-free fast release", campaigns.warfree),
        ("Turnpike (fast release + coloring)", campaigns.turnpike),
        ("UNSAFE: ckpt release w/o coloring", campaigns.unsafe),
    )
    header = f"{'variant':<38}{'correct':>9}{'SDC':>6}{'recoveries':>12}{'parity':>8}"
    print(header)
    print("-" * len(header))
    for name, result in rows:
        parity = sum(1 for o in result.outcomes if o.parity_detected)
        print(
            f"{name:<38}{result.correct_runs:>6}/{result.runs:<3}"
            f"{result.sdc_runs:>5}{result.recovery_runs:>12}{parity:>8}"
        )

    print(
        "\nThe unsafe variant overwrites a register's only verified "
        "checkpoint storage\nbefore verification — when the overwritten "
        "value was corrupted, recovery\nrestores garbage (Figure 16). "
        "Hardware coloring gives each in-flight\ncheckpoint a distinct "
        "location, which is why Turnpike stays correct."
    )

    assert campaigns.turnpike.correct_runs == campaigns.turnpike.runs
    assert campaigns.unsafe.sdc_runs > 0, "expected Figure 16 corruption"

    # -- part 2: strike every protected structure under full Turnpike -----
    mixed_count = max(count, 7)
    memory = workload.fresh_memory()
    golden = golden_memory(compiled, memory)
    injections = random_mixed_injections(
        compiled,
        wcdl=10,
        count=mixed_count,
        seed=2024,
        horizon=_horizon(compiled, memory),
    )
    result = CampaignResult()
    for injection in injections:
        result.outcomes.append(
            run_with_injection(
                compiled, turnpike_machine_config(10), memory, injection,
                golden,
            )
        )

    print(
        f"\nmixed-target campaign under Turnpike "
        f"({mixed_count} strikes, all structures):"
    )
    header = f"{'structure':<14}{'runs':>6}{'contained':>11}{'SDC':>6}"
    print(header)
    print("-" * len(header))
    for target, row in vulnerability_report(result).items():
        print(
            f"{target:<14}{row['runs']:>6}"
            f"{100 * row['containment_rate']:>10.0f}%"
            f"{row['kinds']['sdc']:>6}"
        )
    assert all(o.contained for o in result.outcomes), "uncontained strike"


if __name__ == "__main__":
    main()
