#!/usr/bin/env python3
"""Bring your own kernel: build a TK program with the ProgramBuilder,
then watch each Turnpike optimization act on it.

The kernel is a saxpy-with-histogram mix that exercises every mechanism:
strength-reducible addressing (LIVM fodder), a read-modify-write table
(WAR conflicts), and a loop-carried accumulator (checkpoint traffic).

Run:  python examples/custom_kernel.py
"""

from repro import (
    CoreConfig,
    InOrderCore,
    ResilienceHardwareConfig,
    compile_baseline,
    compile_program,
    execute,
    figure21_configs,
)
from repro.isa import ProgramBuilder
from repro.runtime import Memory


def build_kernel(n: int = 600):
    b = ProgramBuilder("saxpy_hist")
    b.begin_block("entry")
    x_base = b.li(0x1000)
    y_base = b.li(0x4000)
    t_base = b.li(0x8000)
    alpha = b.li(3)
    bins_mask = b.li(15)
    acc = b.li(0)
    i = b.li(0)
    limit = b.li(n)
    b.jmp("loop")
    b.begin_block("loop")
    off = b.shli(i, 2)  # strength reduction turns this into a derived IV
    xa = b.add(x_base, off)
    x = b.load(xa)
    ya = b.add(y_base, off)
    y = b.load(ya)
    ax = b.mul(alpha, x)
    s = b.add(ax, y)
    b.store(s, ya)  # y[i] = alpha*x[i] + y[i]
    b.add(acc, s, dest=acc)  # loop-carried accumulator
    slot = b.and_(s, bins_mask)  # histogram: load+store same address (WAR)
    ta = b.add(t_base, b.shli(slot, 2))
    cnt = b.load(ta)
    cnt = b.addi(cnt, 1)
    b.store(cnt, ta)
    b.addi(i, 1, dest=i)
    b.blt(i, limit, "loop", "done")
    b.begin_block("done")
    b.store(acc, x_base, offset=-4)
    b.ret()
    return b.finish()


def seed_memory(n: int = 600) -> Memory:
    mem = Memory()
    mem.write_words(0x1000, [(7 * k) % 100 - 50 for k in range(n)])
    mem.write_words(0x4000, [(3 * k) % 41 for k in range(n)])
    return mem


def main() -> None:
    program = build_kernel()
    print(f"kernel: {program.num_instructions} static instructions\n")

    golden = execute(program, seed_memory()).memory.data_image()
    base = compile_baseline(program)
    base_run = execute(base.program, seed_memory(), collect_trace=True)
    assert base_run.memory.data_image() == golden
    core = CoreConfig()
    base_cycles = InOrderCore(core, ResilienceHardwareConfig.baseline()).run(
        base_run.trace
    ).cycles

    print(
        f"{'configuration':<52}{'ckpts':>7}{'overhead':>10}"
        f"{'released':>10}{'quar':>6}"
    )
    for label, compiler_cfg, flags in figure21_configs():
        compiled = compile_program(program, compiler_cfg)
        run = execute(compiled.program, seed_memory(), collect_trace=True)
        assert run.memory.data_image() == golden, label
        hw = ResilienceHardwareConfig(
            enabled=True,
            wcdl=10,
            clq_enabled=flags["clq"],
            coloring_enabled=flags["coloring"],
        )
        stats = InOrderCore(core, hw).run(run.trace)
        released = stats.warfree_released + stats.colored_released
        print(
            f"{label:<52}{run.summary().checkpoints:>7}"
            f"{stats.cycles / base_cycles - 1:>9.1%}"
            f"{released:>10}{stats.quarantined:>6}"
        )

    print(
        "\nReading the table: checkpoint counts fall as the compiler "
        "passes come in\n(pruning, LICM, LIVM), and the released column "
        "grows as the hardware\nbypasses (CLQ + coloring) take over the "
        "remaining stores."
    )


if __name__ == "__main__":
    main()
