#!/usr/bin/env python3
"""Quickstart: compile one benchmark for each resilience scheme and
compare their simulated execution time on the in-order core.

Run:  python examples/quickstart.py [benchmark-uid]
      (default CPU2017.lbm; list ids with --list)
"""

import sys

from repro import (
    CoreConfig,
    InOrderCore,
    ResilienceHardwareConfig,
    all_profiles,
    compile_baseline,
    compile_program,
    execute,
    load_workload,
    turnpike_config,
    turnstile_config,
)


def main() -> None:
    if "--list" in sys.argv:
        for prof in all_profiles():
            print(f"{prof.uid:24s} {prof.notes}")
        return
    uid = sys.argv[1] if len(sys.argv) > 1 else "CPU2017.lbm"

    print(f"benchmark: {uid}")
    workload = load_workload(uid)
    print(f"source program: {workload.program.num_instructions} static instructions")

    # 1. Compile three ways: no resilience, Turnstile, Turnpike.
    baseline = compile_baseline(workload.program)
    turnstile = compile_program(workload.program, turnstile_config())
    turnpike = compile_program(workload.program, turnpike_config())
    print(
        f"static checkpoints: turnstile={turnstile.num_static_checkpoints} "
        f"turnpike={turnpike.num_static_checkpoints}"
    )

    # 2. Execute functionally (golden run + dynamic traces).
    runs = {}
    golden = None
    for name, compiled in (
        ("baseline", baseline),
        ("turnstile", turnstile),
        ("turnpike", turnpike),
    ):
        result = execute(
            compiled.program, workload.fresh_memory(), collect_trace=True
        )
        runs[name] = result
        image = result.memory.data_image()
        if golden is None:
            golden = image
        assert image == golden, "compilation must preserve semantics"
    print(f"dynamic instructions (baseline): {runs['baseline'].steps}")

    # 3. Simulate timing on the Cortex-A53-like core.
    core = CoreConfig()
    base_cycles = InOrderCore(core, ResilienceHardwareConfig.baseline()).run(
        runs["baseline"].trace
    ).cycles
    print(f"\n{'scheme':<12}{'WCDL':>6}{'cycles':>12}{'overhead':>10}")
    for wcdl in (10, 30, 50):
        ts = InOrderCore(
            core, ResilienceHardwareConfig.turnstile(wcdl=wcdl)
        ).run(runs["turnstile"].trace)
        tp = InOrderCore(
            core, ResilienceHardwareConfig.turnpike(wcdl=wcdl)
        ).run(runs["turnpike"].trace)
        for name, stats in (("turnstile", ts), ("turnpike", tp)):
            overhead = stats.cycles / base_cycles - 1
            print(f"{name:<12}{wcdl:>6}{stats.cycles:>12.0f}{overhead:>9.1%}")

    # 4. Where did Turnpike's stores go?
    tp = InOrderCore(core, ResilienceHardwareConfig.turnpike(10)).run(
        runs["turnpike"].trace
    )
    print(
        f"\nTurnpike store disposition @ WCDL 10: "
        f"{tp.warfree_released} WAR-free released, "
        f"{tp.colored_released} colored checkpoints, "
        f"{tp.quarantined} quarantined"
    )


if __name__ == "__main__":
    main()
