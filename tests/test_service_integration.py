"""Integration tests: a real ``repro serve`` subprocess driven through
the client CLI and :class:`ServiceClient`.

The acceptance-critical properties live here:

* service results are byte-for-byte identical to the direct CLI, for
  ``run``, ``lint``, and ``inject`` (stdout *and* the exported
  aggregate JSON);
* duplicate submissions execute at most once;
* SIGTERM drains the queue and exits 0;
* kill -9 mid-campaign followed by a restart re-adopts the job and
  completes it with a byte-identical aggregate.

The server and the direct CLI share one artifact-cache directory per
test module: the cache is observationally invisible (a documented
invariant tested elsewhere), and sharing it keeps this file fast.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.service.client import ServiceClient

SRC = str(Path(__file__).resolve().parent.parent / "src")
RUN_UID = "CPU2006.gcc"
INJECT_ARGS = [
    "SPLASH3.radix", "--count", "12", "--seed", "7",
    "--targets", "register", "--variants", "turnpike,unsafe",
    "--shard-size", "1",
]
INJECT_SPEC = {
    "uid": "SPLASH3.radix", "count": 12, "seed": 7,
    "targets": "register", "variants": "turnpike,unsafe", "shard_size": 1,
}


def _env(cache_dir: Path) -> dict[str, str]:
    env = os.environ.copy()
    env["PYTHONPATH"] = SRC
    env["REPRO_CACHE_DIR"] = str(cache_dir)
    env.pop("REPRO_SERVICE", None)
    return env


def _cli(env, *argv, check=True, timeout=240):
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True,
        env=env,
        timeout=timeout,
    )
    if check:
        assert proc.returncode == 0, proc.stderr.decode()
    return proc


class ServerProc:
    """A ``repro serve`` child in its own process group."""

    def __init__(self, journal: Path, env: dict, workers: int = 2):
        self.journal = journal
        # a kill -9'd predecessor leaves a stale endpoint file behind;
        # drop it so the readiness wait below sees only the new server's
        (journal / "endpoint").unlink(missing_ok=True)
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--journal", str(journal), "--port", "0",
                "--workers", str(workers),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            start_new_session=True,  # killpg must not reach pytest
        )
        deadline = time.monotonic() + 30
        endpoint = journal / "endpoint"
        while not endpoint.exists():
            if self.proc.poll() is not None:
                raise AssertionError(
                    "server died: " + self.proc.stderr.read().decode()
                )
            if time.monotonic() > deadline:
                raise AssertionError("server never wrote its endpoint file")
            time.sleep(0.05)

    def client(self, name="itest") -> ServiceClient:
        return ServiceClient(journal_dir=str(self.journal), client_name=name)

    def sigterm(self, timeout=120):
        self.proc.send_signal(signal.SIGTERM)
        out, err = self.proc.communicate(timeout=timeout)
        return self.proc.returncode, err.decode()

    def kill9(self):
        # killpg: ProcessPoolExecutor children must die too, or they
        # keep running the campaign behind the "crashed" server's back
        os.killpg(os.getpgid(self.proc.pid), signal.SIGKILL)
        self.proc.wait(timeout=30)

    def reap(self):
        if self.proc.poll() is None:
            with contextlib_suppress():
                os.killpg(os.getpgid(self.proc.pid), signal.SIGKILL)
            self.proc.wait(timeout=30)


class contextlib_suppress:
    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return True


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("cache")


@pytest.fixture
def server(tmp_path, cache_dir):
    srv = ServerProc(tmp_path / "journal", _env(cache_dir))
    yield srv
    srv.reap()


def test_run_and_lint_parity_via_submit_cli(server, cache_dir):
    env = _env(cache_dir)
    journal = ["--journal", str(server.journal)]
    for service_argv, direct_argv in (
        (["submit", "run", *journal, RUN_UID, "--wait"], ["run", RUN_UID]),
        (["submit", "lint", *journal, RUN_UID, "--wait"], ["lint", RUN_UID]),
    ):
        via_service = _cli(env, *service_argv, timeout=300)
        direct = _cli(env, *direct_argv, timeout=300)
        assert via_service.stdout == direct.stdout  # byte-for-byte
        assert via_service.stdout  # non-vacuous


def test_inject_parity_and_dedup(server, tmp_path, cache_dir):
    env = _env(cache_dir)
    client = server.client()
    job, deduped = client.submit("inject", INJECT_SPEC)
    assert not deduped

    # concurrent identical submission from another client: same job
    other = server.client(name="other")
    job2, deduped2 = other.submit("inject", INJECT_SPEC)
    assert deduped2 and job2["id"] == job["id"]

    done = client.wait(job["id"], timeout=240)
    assert done["state"] == "done", done
    result = client.result(job["id"])["result"]
    assert result["exit_code"] == 0

    direct_export = tmp_path / "direct.json"
    direct = _cli(
        env, "inject", *INJECT_ARGS, "--export", str(direct_export),
        timeout=300,
    )
    assert result["stdout"].encode() == direct.stdout

    service_export = server.journal / "exports" / f"{done['key']}.json"
    assert service_export.read_bytes() == direct_export.read_bytes()

    # the work ran exactly once for two submissions
    metrics = client.metrics()
    assert metrics["dedup"]["hits"] >= 1
    assert metrics["jobs"]["completed"] == 1

    # resubmitting after completion is a cached hit, still the same job
    job3, deduped3 = client.submit("inject", INJECT_SPEC)
    assert deduped3 and job3["id"] == job["id"] and job3["state"] == "done"

    # `repro result` replays the stored stdout byte-for-byte
    res = _cli(
        env, "result", "--journal", str(server.journal), job["id"]
    )
    assert res.stdout == direct.stdout


def test_jobs_listing_and_version(server, cache_dir):
    env = _env(cache_dir)
    client = server.client()
    job, _ = client.submit("run", {"uid": RUN_UID})
    client.wait(job["id"], timeout=240)
    listing = _cli(
        env, "jobs", "--journal", str(server.journal), "--json"
    )
    jobs = json.loads(listing.stdout)["jobs"]
    assert any(j["id"] == job["id"] and j["state"] == "done" for j in jobs)

    version = _cli(env, "--version")
    from repro import __version__

    assert version.stdout.decode().strip().endswith(__version__)


def test_sigterm_drains_queue_and_exits_zero(server, cache_dir):
    client = server.client()
    ids = [
        client.submit("run", {"uid": uid})[0]["id"]
        for uid in (RUN_UID, "SPLASH3.radix", "CPU2006.mcf")
    ]
    returncode, stderr = server.sigterm()
    assert returncode == 0, stderr
    assert "drained" in stderr
    # every submitted job reached a terminal state in the journal
    from repro.service.journal import Journal

    replayed = Journal(server.journal).replay()
    for job_id in ids:
        assert replayed[job_id].state.value == "done", replayed[job_id]


def test_kill9_mid_campaign_readopts_and_byte_identical(
    tmp_path, tmp_path_factory
):
    # Cold cache on purpose: the campaign must be slow enough to kill
    # mid-flight, and a golden-run build gives us that window.
    cache = tmp_path_factory.mktemp("cold-cache")
    env = _env(cache)
    journal = tmp_path / "journal"
    srv = ServerProc(journal, env, workers=1)
    try:
        client = srv.client()
        job, _ = client.submit("inject", INJECT_SPEC)
        key = job["key"]
        manifest = journal / "manifests" / f"{key}.json"

        # wait until at least one shard is checkpointed, then pull the plug
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            try:
                shards = json.loads(manifest.read_text()).get("shards", {})
            except (OSError, ValueError):
                shards = {}
            if shards:
                break
            if client.job(job["id"])["state"] == "done":
                break  # campaign outran us; restart still must serve it
            time.sleep(0.02)
        else:
            raise AssertionError("no shard ever reached the manifest")
        srv.kill9()
    except BaseException:
        srv.reap()
        raise

    # restart on the same journal: the interrupted job is re-adopted,
    # resumed from the manifest, and completed
    srv2 = ServerProc(journal, env, workers=1)
    try:
        client = srv2.client()
        assert client.job(job["id"])["kind"] == "inject"
        done = client.wait(job["id"], timeout=240)
        assert done["state"] == "done", done
        result = client.result(job["id"])["result"]

        direct_export = tmp_path / "direct.json"
        direct = _cli(
            env, "inject", *INJECT_ARGS, "--export", str(direct_export),
            timeout=300,
        )
        assert result["stdout"].encode() == direct.stdout
        service_export = journal / "exports" / f"{done['key']}.json"
        assert service_export.read_bytes() == direct_export.read_bytes()
    finally:
        srv2.reap()
