"""Checkpoint pruning tests (Section 4.1.3, Penny-style).

The pruning scenarios need real region boundaries between a definition
and the consuming region; the helpers below insert filler stores and use
a store cap of 1 so the partitioner creates those boundaries.
"""

from repro.compiler.checkpoints import count_checkpoints, insert_eager_checkpoints
from repro.compiler.pruning import (
    PRUNED_ANNOTATION,
    prune_checkpoints,
    pruned_definitions,
)
from repro.compiler.regions import partition_regions
from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import Opcode


def _prep(prog, cap=1):
    partition_regions(prog, max_stores=cap)
    insert_eager_checkpoints(prog)
    return prog


class TestPruning:
    def test_constant_checkpoint_pruned(self):
        """A LI definition's checkpoint is always reconstructable."""
        b = ProgramBuilder("c")
        b.begin_block("entry")
        base = b.li(0x100)
        filler = b.li(1)
        k = b.li(42)
        b.store(filler, base, offset=64)  # forces a boundary before use of k
        b.store(k, base)
        b.ret()
        prog = _prep(b.finish())
        before = count_checkpoints(prog)
        assert before >= 1
        stats = prune_checkpoints(prog)
        assert stats.pruned >= 1
        assert count_checkpoints(prog) < before
        annotated = pruned_definitions(prog)
        assert any(i.op is Opcode.LI for i in annotated)
        consts = [
            i.annotations[PRUNED_ANNOTATION]
            for i in annotated
            if i.op is Opcode.LI
        ]
        assert all(e.kind == "const" for e in consts)

    def test_derived_value_pruned_when_operand_stable(self):
        """y = x + 4 with x never redefined: y reconstructs from x's
        checkpoint at recovery time."""
        b = ProgramBuilder("prune")
        b.begin_block("entry")
        base = b.li(0x100)
        x = b.li(10)
        y = b.addi(x, 4)
        b.store(x, base)
        b.store(y, base, offset=4)
        b.store(x, base, offset=8)
        b.ret()
        prog = _prep(b.finish())
        stats = prune_checkpoints(prog)
        assert stats.pruned >= 1
        exprs = [
            i.annotations[PRUNED_ANNOTATION]
            for i in pruned_definitions(prog)
            if i.op is Opcode.ADDI
        ]
        assert exprs and exprs[0].kind == "op"

    def test_not_pruned_when_operand_redefined_later(self):
        """y = x + 4 but x is redefined afterwards: x's recovery-time
        checkpoint would hold the new value, so y keeps its checkpoint."""
        b = ProgramBuilder("nope")
        b.begin_block("entry")
        base = b.li(0x100)
        x = b.li(10)
        y = b.addi(x, 4)
        b.li(99, dest=x)  # x redefined -> y not reconstructable
        b.store(x, base)
        b.store(y, base, offset=4)
        b.store(x, base, offset=8)
        b.ret()
        prog = _prep(b.finish())
        prune_checkpoints(prog)
        remaining = [
            i.srcs[0] for i in prog.instructions() if i.is_checkpoint
        ]
        assert y in remaining

    def test_load_checkpoint_never_pruned(self):
        """Loaded values cannot be reconstructed (memory may change)."""
        b = ProgramBuilder("ld")
        b.begin_block("entry")
        base = b.li(0x100)
        v = b.load(base)
        filler = b.li(1)
        b.store(filler, base, offset=64)
        b.store(v, base, offset=4)
        b.ret()
        prog = _prep(b.finish())
        prune_checkpoints(prog)
        remaining = [i.srcs[0] for i in prog.instructions() if i.is_checkpoint]
        assert v in remaining

    def test_iv_self_update_not_pruned(self):
        """i = i + 1 cannot be reconstructed from i's own latest
        checkpoint (self-reference)."""
        from helpers import build_sum_loop

        prog = _prep(build_sum_loop(trip=4), cap=2)
        before_regs = {
            i.srcs[0] for i in prog.instructions() if i.is_checkpoint
        }
        prune_checkpoints(prog)
        after_regs = {
            i.srcs[0] for i in prog.instructions() if i.is_checkpoint
        }
        loop = prog.block("loop")
        iv_regs = {
            i.dest
            for i in loop.instructions
            if i.dest is not None and i.dest in i.srcs
        }
        assert iv_regs
        assert iv_regs & after_regs == iv_regs & before_regs

    def test_transitive_boundedness(self):
        """y reconstructs from x because x's own definition is bound by a
        pruned-checkpoint annotation (const)."""
        b = ProgramBuilder("chain")
        b.begin_block("entry")
        base = b.li(0x100)
        x = b.li(7)
        y = b.addi(x, 1)
        b.store(x, base)
        b.store(y, base, offset=4)
        b.store(x, base, offset=8)
        b.ret()
        prog = _prep(b.finish())
        stats = prune_checkpoints(prog)
        assert stats.pruned >= 2  # x via const, y via op(x)

    def test_prune_preserves_program_validity(self):
        b = ProgramBuilder("v")
        b.begin_block("entry")
        base = b.li(0x100)
        k = b.li(5)
        b.store(k, base, offset=16)
        b.store(k, base)
        b.ret()
        prog = _prep(b.finish())
        prune_checkpoints(prog)
        prog.validate()

    def test_examined_counts_eager_pairs(self):
        b = ProgramBuilder("e")
        b.begin_block("entry")
        base = b.li(0x100)
        k = b.li(5)
        b.store(k, base, offset=16)
        b.store(k, base)
        b.ret()
        prog = _prep(b.finish())
        stats = prune_checkpoints(prog)
        assert stats.examined >= stats.pruned >= 1

    def test_pruned_run_still_functionally_equivalent(self):
        from repro.runtime.interpreter import execute
        from repro.runtime.memory import Memory

        b = ProgramBuilder("eq")
        b.begin_block("entry")
        base = b.li(0x100)
        x = b.li(3)
        y = b.addi(x, 9)
        b.store(x, base)
        b.store(y, base, offset=4)
        b.ret()
        golden = execute(b.program.copy(), Memory()).memory.data_image()
        prog = _prep(b.finish())
        prune_checkpoints(prog)
        image = execute(prog, Memory()).memory.data_image()
        assert image == golden
