"""Unit tests for the verifier framework and the R1..R9 rule suite."""

from __future__ import annotations

import pytest

from repro.compiler.config import turnpike_config
from repro.compiler.pipeline import CompiledProgram, compile_program
from repro.compiler.recovery import build_recovery_map
from repro.isa import instructions as ins
from repro.isa.builder import ProgramBuilder
from repro.verify import (
    Severity,
    VerifierContext,
    VerifierPassManager,
    build_region_graph,
    color_runs,
    default_manager,
    default_rules,
    verify_compiled,
)
from repro.verify.diagnostics import Diagnostic, Location, VerificationReport
from repro.verify.rules.war import MAY, MUST, WARFREE, classify_stores, simulate_war

from fixtures.broken import _package  # reuse the hand-tagging helper
from helpers import build_sum_loop


def _clean_compiled():
    """A well-formed two-region program (compiled by hand)."""
    b = ProgramBuilder("clean")
    b.begin_block("entry")
    b.emit(ins.boundary())
    v = b.li(5)
    b.emit(ins.checkpoint(v))
    b.emit(ins.boundary())
    base = b.li(0x400)
    b.store(v, base)
    b.ret()
    return _package(b.finish())


class TestFramework:
    def test_clean_program_has_no_errors(self):
        report = verify_compiled(_clean_compiled())
        assert report.ok
        assert report.rules_run == [
            "R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9"
        ]

    def test_manager_runs_selected_rules_only(self):
        rules = [r for r in default_rules() if r.rule_id in ("R1", "R5")]
        report = VerifierPassManager(rules).run(
            VerifierContext(_clean_compiled())
        )
        assert report.rules_run == ["R1", "R5"]

    def test_report_rendering_and_counts(self):
        report = VerificationReport(program="p")
        report.extend(
            [
                Diagnostic("R1", Severity.ERROR, Location("p", "b", 3), "boom"),
                Diagnostic("R3", Severity.INFO, Location("p"), "fyi"),
            ]
        )
        assert not report.ok
        assert report.summary_counts() == {"error": 1, "warning": 0, "info": 1}
        text = report.render_text()
        assert "error[R1] p/b:3: boom" in text
        assert report.to_dict()["counts"]["error"] == 1

    def test_text_rendering_elides_long_groups(self):
        report = VerificationReport(program="p")
        report.extend(
            Diagnostic("R6", Severity.WARNING, Location("p", "b", i), "w")
            for i in range(12)
        )
        text = report.render_text(max_per_rule=3)
        assert "9 more R6/warning finding(s) elided" in text


class TestRegionGraph:
    def test_straightline_regions_chain(self):
        compiled = _clean_compiled()
        graph = build_region_graph(VerifierContext(compiled).cfg())
        assert graph.regions == {0, 1}
        assert graph.succs(0) == {1}
        assert graph.ckpt_regs[0] and not graph.ckpt_regs.get(1)

    def test_loop_regions_form_a_cycle(self):
        program = build_sum_loop(trip=4)
        compiled = compile_program(program, turnpike_config())
        graph = build_region_graph(VerifierContext(compiled).cfg())

        def reaches_itself(rid):
            seen, work = set(), list(graph.succs(rid))
            while work:
                node = work.pop()
                if node == rid:
                    return True
                if node not in seen:
                    seen.add(node)
                    work.extend(graph.succs(node))
            return False

        assert any(reaches_itself(rid) for rid in graph.regions), (
            "loop regions should form a region-graph cycle"
        )

    def test_color_runs_chain_through_non_checkpointing_regions(self):
        # r checkpointed by regions 0 and 2; region 1 between them does
        # not checkpoint it — the colour run must still connect 0 -> 2.
        b = ProgramBuilder("chain")
        b.begin_block("entry")
        b.emit(ins.boundary())
        r = b.li(1)
        b.emit(ins.checkpoint(r))
        b.emit(ins.boundary())
        base = b.li(0x400)
        b.store(r, base)
        b.emit(ins.boundary())
        r2 = b.addi(r, 1, dest=r)
        b.emit(ins.checkpoint(r2))
        b.store(r2, base, offset=4)
        b.ret()
        compiled = _package(b.finish())
        runs = color_runs(VerifierContext(compiled).region_graph())
        assert runs[r].longest_acyclic == 2
        assert not runs[r].cyclic


class TestRuleSpecifics:
    def test_r1_counts_worst_path_across_blocks(self):
        # Diamond: one arm stores 3 times, the other once; the region
        # spans the join, so the worst path (3 + 1 after the join) must
        # be reported, not the per-block count.
        b = ProgramBuilder("diamond_stores")
        b.begin_block("entry")
        b.emit(ins.boundary())
        v = b.li(1)
        base = b.li(0x400)
        cond = b.li(0)
        then_l, else_l, join = "then", "else", "join"
        b.beq(cond, cond, then_l, else_l)
        b.begin_block(then_l)
        for i in range(3):
            b.store(v, base, offset=4 * i)
        b.jmp(join)
        b.begin_block(else_l)
        b.store(v, base, offset=32)
        b.jmp(join)
        b.begin_block(join)
        b.store(v, base, offset=64)
        b.ret()
        compiled = _package(b.finish())
        report = verify_compiled(compiled)
        r1 = [d for d in report.by_rule("R1") if d.severity is Severity.ERROR]
        assert len(r1) == 1
        assert "4 regular stores" in r1[0].message

    def test_r2_checkpoint_on_one_path_only_is_reported(self):
        # The def is checkpointed on the then-path but crosses the
        # boundary unprotected via the else-path: path-sensitivity.
        b = ProgramBuilder("half_protected")
        b.begin_block("entry")
        b.emit(ins.boundary())
        v = b.li(9)
        cond = b.li(0)
        b.beq(cond, cond, "then", "else")
        b.begin_block("then")
        b.emit(ins.checkpoint(v))
        b.jmp("join")
        b.begin_block("else")
        b.jmp("join")
        b.begin_block("join")
        b.emit(ins.boundary())
        base = b.li(0x400)
        b.store(v, base)
        b.ret()
        compiled = _package(b.finish())
        errors = [
            d
            for d in verify_compiled(compiled).by_rule("R2")
            if d.severity is Severity.ERROR
        ]
        assert len(errors) == 1
        assert "crosses a region boundary" in errors[0].message

    def test_r3_distinct_offsets_same_base_are_warfree(self):
        b = ProgramBuilder("disjoint")
        b.begin_block("entry")
        b.emit(ins.boundary())
        base = b.li(0x400)
        v = b.load(base, offset=0)
        b.store(v, base, offset=4)  # provably distinct from the load
        b.ret()
        compiled = _package(b.finish())
        classes = classify_stores(VerifierContext(compiled))
        assert [sc.kind for sc in classes.values()] == [WARFREE]

    def test_r3_region_reset_forgets_loads(self):
        b = ProgramBuilder("region_reset")
        b.begin_block("entry")
        b.emit(ins.boundary())
        base = b.li(0x400)
        v = b.load(base)
        b.emit(ins.checkpoint(v))
        b.emit(ins.boundary())
        b.store(v, base)  # same address, but a new region: WAR-free
        b.ret()
        compiled = _package(b.finish())
        classes = classify_stores(VerifierContext(compiled))
        assert [sc.kind for sc in classes.values()] == [WARFREE]

    def test_r3_cross_block_loads_become_undecided(self):
        b = ProgramBuilder("cross_block")
        b.begin_block("entry")
        b.emit(ins.boundary())
        base = b.li(0x400)
        v = b.load(base)
        b.jmp("next")
        b.begin_block("next")
        base2 = b.li(0x500)
        b.store(v, base2, offset=8)  # actually disjoint, but unknown
        b.ret()
        compiled = _package(b.finish())
        classes = classify_stores(VerifierContext(compiled))
        assert [sc.kind for sc in classes.values()] == [MAY]

    def test_r3_simulator_matches_known_conflicts(self):
        from repro.runtime.memory import Memory

        compiled = _package_war_loop()
        dyn = simulate_war(compiled.program, Memory())
        conflicts = {u: s.conflicts for u, s in dyn.items() if s.executions}
        assert any(c > 0 for c in conflicts.values())

    def test_r4_acyclic_pressure_below_pool_is_silent(self):
        compiled = _clean_compiled()
        report = verify_compiled(compiled)
        assert not [
            d
            for d in report.by_rule("R4")
            if d.severity is not Severity.INFO
        ]

    def test_r5_flags_dangling_region_id(self):
        compiled = _clean_compiled()
        # Orphan an instruction into a region that has no boundary.
        compiled.program.entry.instructions[2].region_id = 77
        report = verify_compiled(compiled)
        assert any(
            "no recovery entry" in d.message for d in report.by_rule("R5")
        )

    def test_r6_quiet_when_scheduler_separated_the_pair(self):
        b = ProgramBuilder("spaced")
        b.begin_block("entry")
        b.emit(ins.boundary())
        base = b.li(0x400)
        v = b.load(base)
        b.li(1)
        b.li(2)  # two filler issues cover the 3-cycle load latency
        b.emit(ins.checkpoint(v))
        b.ret()
        compiled = _package(b.finish())
        assert not verify_compiled(compiled).by_rule("R6")


def _package_war_loop():
    """A loop that reloads and rewrites the same cell each iteration."""
    b = ProgramBuilder("war_loop")
    b.begin_block("entry")
    b.emit(ins.boundary())
    base = b.li(0x400)
    i = b.li(0)
    limit = b.li(3)
    b.jmp("loop")
    b.begin_block("loop")
    v = b.load(base)
    v2 = b.addi(v, 1)
    b.store(v2, base)
    i2 = b.addi(i, 1, dest=i)
    b.blt(i2, limit, "loop", "exit")
    b.begin_block("exit")
    b.ret()
    return _package(b.finish())


class TestPipelineIntegration:
    def test_compile_with_verify_flag_passes_on_real_workload(self):
        from repro.workloads.suites import load_workload

        workload = load_workload("SPLASH3.radix")
        compiled = compile_program(
            workload.program, turnpike_config(), verify=True
        )
        report = compiled.stats["verify"]
        assert report.ok

    def test_verify_flag_raises_on_broken_result(self, monkeypatch):
        from repro.verify import VerificationError
        import repro.compiler.pipeline as pipeline_mod

        # Sabotage the final recovery map so verification must fail.
        def bad_recovery_map(program):
            real = build_recovery_map(program)
            real.entries.pop(max(real.entries), None)
            return real

        monkeypatch.setattr(
            pipeline_mod, "build_recovery_map", bad_recovery_map
        )
        with pytest.raises(VerificationError) as exc:
            compile_program(build_sum_loop(), turnpike_config(), verify=True)
        assert exc.value.report.by_rule("R5")
