"""Tests for the recovery-cost analysis extension."""

import pytest

from repro.compiler.config import turnpike_config
from repro.compiler.pipeline import compile_program
from repro.faults.analysis import (
    measure_recovery_cost,
    recovery_cost_vs_wcdl,
)
from repro.workloads.suites import load_workload


@pytest.fixture(scope="module")
def setup():
    wl = load_workload("CPU2006.bzip2")
    compiled = compile_program(wl.program, turnpike_config())
    return wl, compiled


class TestRecoveryCost:
    def test_all_runs_correct(self, setup):
        wl, compiled = setup
        report = measure_recovery_cost(
            compiled, wl.fresh_memory(), wcdl=10, count=12, seed=3
        )
        assert report.all_correct
        assert len(report.runs) == 12

    def test_recoveries_redo_work(self, setup):
        wl, compiled = setup
        report = measure_recovery_cost(
            compiled, wl.fresh_memory(), wcdl=10, count=12, seed=3
        )
        recs = report.recovery_runs
        assert recs
        # A recovery re-executes at least part of a region.
        assert report.max_reexecution > 0

    def test_reexecution_is_bounded(self, setup):
        """Rollback depth is bounded by the unverified window: regions
        in flight cover at most ~(WCDL + 2 * max region length) commits."""
        wl, compiled = setup
        wcdl = 10
        report = measure_recovery_cost(
            compiled, wl.fresh_memory(), wcdl=wcdl, count=12, seed=3
        )
        # Generous structural bound: nothing remotely close to a full
        # re-run of the program.
        assert report.max_reexecution < 2_000

    def test_cost_grows_with_wcdl(self, setup):
        """Longer detection latency keeps more regions unverified, so
        recoveries roll back further on average."""
        wl, compiled = setup
        sweep = recovery_cost_vs_wcdl(
            compiled, wl.fresh_memory(), wcdls=(10, 200), count=12, seed=9
        )
        assert sweep[10].all_correct and sweep[200].all_correct
        if sweep[10].recovery_runs and sweep[200].recovery_runs:
            assert (
                sweep[200].mean_reexecution >= sweep[10].mean_reexecution
            )

    def test_report_properties_empty(self):
        from repro.faults.analysis import RecoveryCostReport

        report = RecoveryCostReport(wcdl=10)
        assert report.mean_reexecution == 0.0
        assert report.max_reexecution == 0
        assert report.all_correct
