"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

from repro.compiler.config import turnpike_config, turnstile_config
from repro.compiler.pipeline import compile_baseline, compile_program
from repro.runtime.memory import Memory
from repro.workloads.generator import build_workload
from repro.workloads.suites import profile

from helpers import build_diamond, build_sum_loop


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite the golden trace fixtures instead of diffing "
        "against them (then commit the changed JSON)",
    )


@pytest.fixture(scope="session")
def update_goldens(request) -> bool:
    return request.config.getoption("--update-goldens")


@pytest.fixture
def sum_loop():
    return build_sum_loop()


@pytest.fixture
def diamond():
    return build_diamond()


@pytest.fixture(scope="session")
def quick_workloads():
    """A small, behaviour-diverse set of full workloads (session-cached)."""
    uids = ["CPU2006.gcc", "CPU2017.exchange2", "SPLASH3.radix"]
    return [build_workload(profile(uid)) for uid in uids]


@pytest.fixture(scope="session")
def gcc_workload():
    return build_workload(profile("CPU2006.gcc"))


@pytest.fixture(scope="session")
def gcc_turnpike(gcc_workload):
    return compile_program(gcc_workload.program, turnpike_config())


@pytest.fixture(scope="session")
def gcc_turnstile(gcc_workload):
    return compile_program(gcc_workload.program, turnstile_config())


@pytest.fixture(scope="session")
def gcc_baseline(gcc_workload):
    return compile_baseline(gcc_workload.program)


@pytest.fixture
def empty_memory():
    return Memory()
