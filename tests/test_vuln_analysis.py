"""Bit-level vulnerability analysis (BVA) tests: map construction,
classification soundness, the R7/R8 verifier rules, SARIF metadata, and
the ``repro lint`` crash-containment contract.

The heavy soundness property — a statically masked register bit, force
injected, never changes the architectural exit state — is checked with
hypothesis over the canonical sum loop.
"""

from __future__ import annotations

import argparse
import functools

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.compiler.config import turnpike_config
from repro.compiler.pipeline import compile_program
from repro.faults.campaign import VARIANT_CONFIGS
from repro.faults.injector import golden_memory, run_with_injection
from repro.isa.registers import Reg
from repro.runtime.machine import Injection, InjectionTarget
from repro.runtime.memory import Memory
from repro.verify import VerifierContext, default_rules
from repro.verify.rules.vulnerability import (
    DEFAULT_PROTECTION,
    MaskedFractionRule,
    UnprotectedVulnerableRule,
)
from repro.verify.sarif import RULE_CATALOGUE, reports_to_sarif, rule_help_uri
from repro.verify.vuln import (
    MASKED,
    UNKNOWN,
    VULNERABLE,
    VulnerabilityMap,
    build_map,
    variant_config,
)

from helpers import build_sum_loop

ALL_RULE_IDS = [f"R{i}" for i in range(1, 10)]


@functools.lru_cache(maxsize=1)
def _sum_loop_setup():
    """Compiled sum loop + its vulnerability map (built once)."""
    compiled = compile_program(build_sum_loop(), turnpike_config())
    vmap = build_map(compiled, Memory, uid="sum_loop")
    memory = Memory()
    golden = golden_memory(compiled, memory)
    config = variant_config("turnpike", wcdl=10)
    return compiled, vmap, memory, golden, config


class TestVariantConfig:
    @pytest.mark.parametrize("variant", sorted(VARIANT_CONFIGS))
    def test_matches_campaign_constructors(self, variant):
        # vuln.variant_config is a deliberate local mirror (it cannot
        # import the campaign module without a cycle); lock the two.
        assert variant_config(variant, 10) == VARIANT_CONFIGS[variant](10)
        assert variant_config(variant, 25) == VARIANT_CONFIGS[variant](25)

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            variant_config("bogus")


class TestVulnerabilityMap:
    def test_build_is_deterministic(self):
        compiled, vmap, *_ = _sum_loop_setup()
        again = build_map(compiled, Memory, uid="sum_loop")
        assert again.to_dict() == vmap.to_dict()

    def test_round_trip_through_dict(self):
        _, vmap, *_ = _sum_loop_setup()
        clone = VulnerabilityMap.from_dict(vmap.to_dict())
        assert clone.to_dict() == vmap.to_dict()
        assert clone.horizon == vmap.horizon
        # lookups survive the round trip
        for t in (1, vmap.horizon - 1):
            for reg in range(vmap.num_registers):
                assert clone.register_live_mask(reg, t) == \
                    vmap.register_live_mask(reg, t)

    def test_malformed_payload_rejected(self):
        _, vmap, *_ = _sum_loop_setup()
        data = vmap.to_dict()
        data["reg_live"] = "oops"
        with pytest.raises(TypeError):
            VulnerabilityMap.from_dict(data)

    def test_classify_edge_cases(self):
        _, vmap, *_ = _sum_loop_setup()
        reg = next(
            r for r in range(vmap.num_registers) if r not in vmap.reserved
        )
        reserved = vmap.reserved[0]
        # Beyond the committed run nothing is ever applied.
        assert vmap.classify("register", vmap.ticks, reg=reg) == MASKED
        # Out-of-range coordinates make no claim.
        assert vmap.classify("register", 0, reg=reg) == UNKNOWN
        assert vmap.classify("register", 1, bit=32, reg=reg) == UNKNOWN
        assert vmap.classify("register", 1, reg=None) == UNKNOWN
        assert vmap.classify("register", 1, reg=reserved) == UNKNOWN
        # Unsound variant and unmodelled targets make no claim either.
        assert vmap.classify("register", 1, reg=reg, variant="unsafe") == UNKNOWN
        assert vmap.classify("pc", 1) == UNKNOWN

    def test_breakdown_partitions_population(self):
        _, vmap, *_ = _sum_loop_setup()
        for variant in vmap.variants:
            for name, row in vmap.breakdown(variant).items():
                assert row["cells"] == (
                    row["masked"] + row["vulnerable"] + row["unknown"]
                ), name
                assert row["unknown"] == 0  # sound variants: total claim

    def test_absent_structures_fully_masked_under_turnstile(self):
        _, vmap, *_ = _sum_loop_setup()
        per = vmap.breakdown("turnstile")
        assert "clq" not in vmap.active["turnstile"]
        assert "coloring" not in vmap.active["turnstile"]
        assert per["clq"]["masked"] == per["clq"]["cells"]
        assert per["coloring"]["masked"] == per["coloring"]["cells"]
        # ...while colouring, which turnpike does instantiate, is
        # occupied (vulnerable) for most of the loop.
        assert vmap.breakdown("turnpike")["coloring"]["vulnerable"] > 0

    def test_render_text_mentions_every_target(self):
        _, vmap, *_ = _sum_loop_setup()
        text = vmap.render_text()
        for name in ("register", "store_buffer", "clq", "coloring"):
            assert name in text
        assert "(absent)" in text  # turnstile's clq/coloring rows


@given(data=st.data())
@settings(max_examples=25, deadline=None)
def test_masked_register_bits_never_corrupt_exit_state(data):
    """Force-injecting any statically masked register bit is harmless."""
    compiled, vmap, memory, golden, config = _sum_loop_setup()
    regs = [r for r in range(vmap.num_registers) if r not in vmap.reserved]
    reg = data.draw(st.sampled_from(regs))
    bit = data.draw(st.integers(0, 31))
    time = data.draw(st.integers(1, vmap.horizon - 1))
    klass = vmap.classify(
        "register", time, bit=bit, reg=reg, variant="turnpike"
    )
    assume(klass == MASKED)
    delay = data.draw(st.integers(0, vmap.wcdl))
    outcome = run_with_injection(
        compiled,
        config,
        memory,
        Injection(
            time=time,
            target=InjectionTarget.REGISTER,
            reg=Reg.phys(reg),
            bit=bit,
            detection_delay=delay,
        ),
        golden,
    )
    assert outcome.correct, (reg, bit, time, delay, outcome.kind)


class TestVulnerabilityRules:
    def _ctx(self):
        compiled, *_ = _sum_loop_setup()
        return VerifierContext(
            compiled, differential=True, memory_factory=Memory
        )

    def test_r7_reports_breakdown_info(self):
        diags = MaskedFractionRule().run(self._ctx())
        infos = [d for d in diags if d.severity.value == "info"]
        assert len(infos) == 1
        assert "vulnerability breakdown under turnpike" in infos[0].message
        assert "register" in infos[0].message

    def test_r7_floor_zero_warns_on_every_protected_structure(self):
        diags = MaskedFractionRule(floor=0.0).run(self._ctx())
        warnings = [d for d in diags if d.severity.value == "warning"]
        assert len(warnings) == len(DEFAULT_PROTECTION["turnpike"])
        assert all("masked under" in d.message for d in warnings)

    def test_r7_silent_without_differential_context(self):
        compiled, *_ = _sum_loop_setup()
        ctx = VerifierContext(compiled, differential=False)
        assert MaskedFractionRule().run(ctx) == []
        assert UnprotectedVulnerableRule().run(ctx) == []

    def test_r8_silent_on_stock_protection(self):
        assert UnprotectedVulnerableRule().run(self._ctx()) == []

    def test_r8_errors_on_uncovered_structure(self):
        rule = UnprotectedVulnerableRule(
            protection={"turnpike": frozenset({"store_buffer"})}
        )
        diags = rule.run(self._ctx())
        assert diags
        assert all(d.severity.value == "error" for d in diags)
        assert any("register" in d.message for d in diags)
        assert all("protection set" in d.message for d in diags)

    def test_default_rules_cover_r1_to_r9(self):
        assert [r.rule_id for r in default_rules()] == ALL_RULE_IDS


class TestSarifRuleMetadata:
    def test_rule_id_set_is_locked(self):
        # Adding a rule without SARIF metadata (or retiring one without
        # cleaning up) must fail loudly here.
        assert list(RULE_CATALOGUE) == ALL_RULE_IDS
        assert {r.rule_id for r in default_rules()} == set(RULE_CATALOGUE)

    def test_every_rule_has_help_uri_and_short_description(self):
        driver = reports_to_sarif([])["runs"][0]["tool"]["driver"]
        rules = driver["rules"]
        assert [r["id"] for r in rules] == ALL_RULE_IDS
        for rule in rules:
            assert rule["shortDescription"]["text"]
            assert rule["helpUri"] == rule_help_uri(rule["id"])
            assert rule["id"].lower() in rule["helpUri"]
            assert rule["helpUri"].endswith(rule["name"])


class TestLintCrashContainment:
    def _args(self, **overrides):
        base = dict(
            uid="SPLASH3.radix",
            all=False,
            scheme="turnpike",
            sb=4,
            format="text",
            no_differential=True,
            strict=False,
            max_per_rule=8,
            output=None,
            workers=1,
        )
        base.update(overrides)
        return argparse.Namespace(**base)

    def test_verifier_crash_exits_2_and_names_the_uid(
        self, monkeypatch, capsys
    ):
        from repro.verify import lint as lint_mod

        def boom(uid, **kwargs):
            raise RuntimeError("kaput")

        monkeypatch.setattr(lint_mod, "lint_benchmark", boom)
        code = lint_mod.run_lint(self._args())
        captured = capsys.readouterr()
        assert code == 2
        assert "SPLASH3.radix: verifier crashed: RuntimeError: kaput" in (
            captured.err
        )
        assert "1 crashed (SPLASH3.radix)" in captured.out
        assert "CRASH" in captured.out

    def test_one_crash_does_not_mask_other_reports(
        self, monkeypatch, capsys
    ):
        from repro.verify import lint as lint_mod

        real = lint_mod.lint_benchmark

        def flaky(uid, **kwargs):
            if uid == "CPU2006.gcc":
                raise ValueError("broken program")
            return real(uid, **kwargs)

        monkeypatch.setattr(lint_mod, "lint_benchmark", flaky)
        monkeypatch.setattr(
            lint_mod,
            "_lint_all",
            lambda uids, **kw: [
                lint_mod._lint_job(
                    (
                        u,
                        kw["scheme"],
                        kw["sb_size"],
                        kw["differential"],
                        kw.get("upset_model", "single"),
                    )
                )
                for u in ["CPU2006.gcc", "SPLASH3.radix"]
            ],
        )
        code = lint_mod.run_lint(self._args(uid="SPLASH3.radix"))
        captured = capsys.readouterr()
        assert code == 2
        assert "CPU2006.gcc: verifier crashed" in captured.err
        # The healthy benchmark still got linted and summarised.
        assert "1 program(s)" in captured.out
