"""Smoke tests: every example script runs end-to-end and prints its
expected headline output."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, *args: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart_default():
    out = _run("quickstart.py", "CPU2006.xalan")
    assert "turnstile" in out and "turnpike" in out
    assert "store disposition" in out


def test_quickstart_list():
    out = _run("quickstart.py", "--list")
    assert "CPU2017.lbm" in out


def test_fault_injection():
    out = _run("fault_injection.py", "CPU2006.bzip2", "12")
    assert "UNSAFE" in out
    assert "Figure 16" in out


def test_design_space():
    out = _run("design_space.py", "CPU2017.xz")
    assert "WCDL" in out
    assert "ideal (infinite)" in out


def test_custom_kernel():
    out = _run("custom_kernel.py")
    assert "Turnstile" in out and "Turnpike" in out
    assert "checkpoint counts fall" in out


def test_service_batch_quick(monkeypatch, tmp_path):
    # never attach to a developer's running service during tests
    monkeypatch.delenv("REPRO_SERVICE", raising=False)
    monkeypatch.setenv("REPRO_SERVICE_DIR", str(tmp_path / "svc"))
    out = _run("service_batch.py", "--quick", "4", "--workers", "2")
    assert "4/4 duplicates were deduplicated" in out
    assert "all 4/4 jobs done" in out
    assert "jobs/s" in out
