"""Hand-built programs that each violate exactly one verifier rule.

The programs are constructed below the compiler — boundaries and region
tags are placed by hand — because the point is to test the *verifier*,
and the real pipeline (correctly) refuses to produce these shapes.

Every factory returns a :class:`CompiledProgram` under the default
Turnpike config (SB size 4 => per-region store budget 2, colour pool 4)
with a freshly built recovery map, so all rules other than the targeted
one see a consistent program.
"""

from __future__ import annotations

from repro.compiler.config import turnpike_config
from repro.compiler.pipeline import CompiledProgram
from repro.compiler.recovery import RecoveryMap, RegionEntry, build_recovery_map
from repro.isa import instructions as ins
from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program


def _tag_regions(program: Program) -> None:
    """Assign region ids: each BOUNDARY opens the next id in order."""
    rid = None
    next_rid = 0
    for block in program.blocks:
        for instr in block.instructions:
            if instr.is_boundary:
                rid = next_rid
                next_rid += 1
            instr.region_id = rid


def _package(program: Program) -> CompiledProgram:
    _tag_regions(program)
    return CompiledProgram(
        program=program,
        config=turnpike_config(),
        partition=None,
        recovery=build_recovery_map(program),
    )


def over_capacity_region() -> CompiledProgram:
    """R1: five regular stores in one region against a budget of two."""
    b = ProgramBuilder("over_capacity")
    b.begin_block("entry")
    b.emit(ins.boundary())
    value = b.li(7)
    base = b.li(0x400)
    for i in range(5):
        b.store(value, base, offset=4 * i)
    b.ret()
    return _package(b.finish())


def missing_checkpoint() -> CompiledProgram:
    """R2: a value crosses a region boundary with no checkpoint."""
    b = ProgramBuilder("missing_checkpoint")
    b.begin_block("entry")
    b.emit(ins.boundary())
    value = b.li(41)
    value = b.addi(value, 1)  # the unprotected boundary-crossing def
    b.emit(ins.boundary())
    base = b.li(0x400)
    b.store(value, base)
    b.ret()
    return _package(b.finish())


def war_hazard_store() -> CompiledProgram:
    """R3: a store provably overwrites an address its region loaded."""
    b = ProgramBuilder("war_hazard")
    b.begin_block("entry")
    b.emit(ins.boundary())
    base = b.li(0x400)
    value = b.load(base)
    value = b.addi(value, 1)
    b.store(value, base)  # same (base, 0) address: guaranteed WAR
    b.ret()
    return _package(b.finish())


def five_colour_region() -> CompiledProgram:
    """R4: one register checkpointed by four consecutive regions.

    With the verified-colour slot occupied, four in-flight checkpoints
    exhaust the default pool of four on a straight-line (acyclic) path.
    """
    b = ProgramBuilder("five_colour")
    b.begin_block("entry")
    reg = b.li(0)
    b.emit(ins.checkpoint(reg))
    for step in range(1, 4):
        b.emit(ins.boundary())
        b.addi(reg, step, dest=reg)
        b.emit(ins.checkpoint(reg))
    b.emit(ins.boundary())
    base = b.li(0x400)
    b.store(reg, base)
    b.ret()
    program = b.finish()
    # The pre-boundary prologue needs a region too: open one first.
    program.entry.instructions.insert(0, ins.boundary())
    return _package(program)


def stale_recovery_map() -> CompiledProgram:
    """R5: a recovery entry whose live-in set is stale."""
    b = ProgramBuilder("stale_recovery")
    b.begin_block("entry")
    b.emit(ins.boundary())
    value = b.li(3)
    b.emit(ins.checkpoint(value))
    b.emit(ins.boundary())
    base = b.li(0x400)
    b.store(value, base)
    b.ret()
    program = b.finish()
    _tag_regions(program)
    recovery = build_recovery_map(program)
    entries = dict(recovery.entries)
    victim = entries[1]
    entries[1] = RegionEntry(
        region_id=victim.region_id,
        block=victim.block,
        index=victim.index,
        live_in=frozenset(),  # drops the store's value register
    )
    return CompiledProgram(
        program=program,
        config=turnpike_config(),
        partition=None,
        recovery=RecoveryMap(entries),
    )


def scheduling_hazard() -> CompiledProgram:
    """R6: a checkpoint issued back-to-back with its 3-cycle load."""
    b = ProgramBuilder("scheduling_hazard")
    b.begin_block("entry")
    b.emit(ins.boundary())
    base = b.li(0x400)
    value = b.load(base)
    b.emit(ins.checkpoint(value))  # LD latency 3, gap 0 -> 2 stall cycles
    b.emit(ins.boundary())
    # Rematerialise the base after the boundary so only the checkpointed
    # register crosses it (keeps R2 quiet; this fixture targets R6).
    base2 = b.li(0x404)
    b.store(value, base2)
    b.ret()
    return _package(b.finish())
