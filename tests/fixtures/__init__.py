"""Deliberately-broken compiled programs for the verifier's own tests.

Each factory in :mod:`fixtures.broken` builds a :class:`CompiledProgram`
that violates exactly one verifier rule; the test suite asserts the rule
fires on it and that no *other* rule does.
"""

from fixtures.broken import (
    five_colour_region,
    missing_checkpoint,
    over_capacity_region,
    scheduling_hazard,
    stale_recovery_map,
    war_hazard_store,
)

__all__ = [
    "over_capacity_region",
    "missing_checkpoint",
    "war_hazard_store",
    "five_colour_region",
    "stale_recovery_map",
    "scheduling_hazard",
]
