"""Differential parity wall: reference vs fastsim vs codegen.

The fast backend (:mod:`repro.runtime.fastsim`) compiles each basic
block to a closed-over Python step function and replays it; the gen-2
codegen backend (:mod:`repro.runtime.codegen`) goes further and fuses
trace-hot block chains into rendered superblock modules with
guard-and-bail mispredict handling. Both are required to be
*bit-identical* to the golden interpreter — same dynamic trace, same
memory image, same final registers, same step count — and therefore to
produce identical timing statistics (cycles, store-buffer stalls,
CLQ/coloring counters) when the trace is fed to the in-order core.

This suite enforces that three ways on every benchmark of the 36-entry
suite (reference / fastsim / codegen, with the codegen run taken twice
so the *superblock* path executes, not just the block-level warmup), on
the full scheme sweep for the quick subset, and on randomized programs
from the hypothesis generator shared with ``test_properties`` — plus a
fuzz section that deliberately diverges the executed input from the
profiled one to stress the superblock bail paths.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.arch import CoreConfig, InOrderCore, ResilienceHardwareConfig
from repro.compiler.config import turnpike_config, turnstile_config
from repro.compiler.pipeline import compile_baseline, compile_program
from repro.isa.builder import ProgramBuilder
from repro.runtime.codegen import CodegenProgram
from repro.runtime.fastsim import FastProgram, compile_fast, execute_fast
from repro.runtime.interpreter import ExecutionLimitExceeded, execute
from repro.runtime.memory import Memory
from repro.workloads.generator import build_workload
from repro.workloads.suites import all_profiles, profile, quick_subset

from test_properties import random_programs

ALL_UIDS = [p.uid for p in all_profiles()]
QUICK_UIDS = [p.uid for p in quick_subset()]


def _assert_matches(res, ref, collect_trace):
    assert res.steps == ref.steps
    assert res.registers == ref.registers
    assert res.memory.data_image() == ref.memory.data_image()
    if collect_trace:
        assert res.trace == ref.trace
    else:
        assert res.trace is None


def assert_parity(program, make_memory, collect_trace=True, max_steps=2_000_000):
    """Three-way differential run on fresh memories; compare everything.

    The codegen backend runs twice through one :class:`CodegenProgram`
    (process-local, forced-aggressive chain formation): the first run is
    the block-level warmup whose profile forms the superblocks, the
    second actually dispatches through them. Both must match reference.
    """
    ref = execute(
        program, make_memory(), max_steps=max_steps, collect_trace=collect_trace
    )
    fast = execute_fast(
        program, make_memory(), max_steps=max_steps, collect_trace=collect_trace
    )
    _assert_matches(fast, ref, collect_trace)
    cg = CodegenProgram(program, cache=None, min_count=1, ratio=0.0)
    warm = cg.execute(
        make_memory(), max_steps=max_steps, collect_trace=collect_trace
    )
    _assert_matches(warm, ref, collect_trace)
    hot = cg.execute(
        make_memory(), max_steps=max_steps, collect_trace=collect_trace
    )
    _assert_matches(hot, ref, collect_trace)
    return ref, fast


class TestBenchmarkParity:
    """Stat-for-stat equality on the full 36-benchmark suite."""

    @pytest.mark.parametrize("uid", ALL_UIDS)
    def test_turnpike_build_parity(self, uid):
        workload = build_workload(profile(uid))
        compiled = compile_program(workload.program, turnpike_config())
        assert_parity(compiled.program, workload.fresh_memory)

    @pytest.mark.parametrize("uid", QUICK_UIDS)
    @pytest.mark.parametrize("scheme", ["baseline", "turnstile", "turnpike"])
    def test_scheme_sweep_timing_parity(self, uid, scheme):
        workload = build_workload(profile(uid))
        if scheme == "baseline":
            compiled = compile_baseline(workload.program)
            hw = ResilienceHardwareConfig.baseline()
        elif scheme == "turnstile":
            compiled = compile_program(workload.program, turnstile_config())
            hw = ResilienceHardwareConfig.turnstile(wcdl=10)
        else:
            compiled = compile_program(workload.program, turnpike_config())
            hw = ResilienceHardwareConfig.turnpike(wcdl=10)
        ref, fast = assert_parity(compiled.program, workload.fresh_memory)
        ref_stats = InOrderCore(CoreConfig(), hw).run(ref.trace)
        fast_stats = InOrderCore(CoreConfig(), hw).run(fast.trace)
        assert fast_stats == ref_stats
        assert fast_stats.cycles == ref_stats.cycles
        assert fast_stats.sb_stall_cycles == ref_stats.sb_stall_cycles
        assert fast_stats.clq_occupancy_avg == ref_stats.clq_occupancy_avg
        assert fast_stats.colored_released == ref_stats.colored_released

    @pytest.mark.parametrize("uid", QUICK_UIDS)
    def test_untraced_parity(self, uid):
        workload = build_workload(profile(uid))
        compiled = compile_program(workload.program, turnpike_config())
        assert_parity(compiled.program, workload.fresh_memory, collect_trace=False)


_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestRandomProgramParity:
    """Hypothesis: parity holds for arbitrary generated programs too."""

    @given(random_programs())
    @_SETTINGS
    def test_source_program_parity(self, prog):
        assert_parity(prog, Memory)

    @given(random_programs())
    @_SETTINGS
    def test_compiled_program_parity(self, prog):
        for compiled in (
            compile_baseline(prog),
            compile_program(prog, turnstile_config()),
            compile_program(prog, turnpike_config()),
        ):
            assert_parity(compiled.program, Memory)


def _memory_driven_program(n_loops: int = 2, trips_addr: int = 0x100):
    """Loops whose trip counts are *loaded from memory*: the same program
    follows different hot paths under different inputs, which is exactly
    what the superblock guards have to survive."""
    b = ProgramBuilder("memdriven")
    b.begin_block("entry")
    base = b.li(0x1000)
    taddr = b.li(trips_addr)
    acc = b.li(1)
    slot = 0
    for loop_idx in range(n_loops):
        limit = b.load(taddr, offset=4 * loop_idx)
        i = b.li(0)
        header = b.fresh_label(f"L{loop_idx}_h")
        exit_label = b.fresh_label(f"L{loop_idx}_x")
        b.jmp(header)
        b.begin_block(header)
        acc = b.add(acc, i, dest=acc)
        acc = b.xor(acc, limit, dest=acc)
        b.store(acc, base, offset=4 * slot)
        slot += 1
        b.addi(i, 1, dest=i)
        b.blt(i, limit, header, exit_label)
        b.begin_block(exit_label)
    b.store(acc, base, offset=4 * slot)
    b.ret()
    return b.finish()


def _memory_with_trips(trips, trips_addr: int = 0x100) -> Memory:
    mem = Memory()
    for k, t in enumerate(trips):
        mem.store(trips_addr + 4 * k, t)
    return mem


class TestSuperblockBailPaths:
    """Profile with input A, execute with input B: guards must bail."""

    def test_forced_mid_superblock_bail_is_bit_identical(self):
        prog = _memory_driven_program()
        cg = CodegenProgram(prog, cache=None, min_count=1, ratio=0.0)
        # Warmup on a long-trip input: back-edges dominate the profile,
        # so the loop bodies fuse into cycle-unrolled superblocks.
        cg.execute(_memory_with_trips([12, 9]), collect_trace=True)
        assert cg.chains, "warmup failed to form any superblock chain"
        # Execute on a short-trip input: every loop now exits from the
        # middle of a fused chain, forcing guard bails.
        ref = execute(prog, _memory_with_trips([5, 2]), collect_trace=True)
        hot = cg.execute(_memory_with_trips([5, 2]), collect_trace=True)
        assert cg.sb_dispatches > 0, "superblock path never dispatched"
        assert cg.bail_count > 0, "divergent input did not exercise a bail"
        _assert_matches(hot, ref, collect_trace=True)

    @given(
        profile_trips=st.lists(st.integers(1, 14), min_size=2, max_size=2),
        run_trips=st.lists(st.integers(1, 14), min_size=2, max_size=2),
    )
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_fuzz_profile_execute_divergence(self, profile_trips, run_trips):
        prog = _memory_driven_program()
        cg = CodegenProgram(prog, cache=None, min_count=1, ratio=0.0)
        cg.execute(_memory_with_trips(profile_trips), collect_trace=True)
        for collect in (True, False):
            ref = execute(
                prog, _memory_with_trips(run_trips), collect_trace=collect
            )
            hot = cg.execute(
                _memory_with_trips(run_trips), collect_trace=collect
            )
            _assert_matches(hot, ref, collect)

    @given(random_programs(), st.integers(0, 3))
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_fuzz_random_programs_survive_repeated_hot_runs(self, prog, reruns):
        """Random programs through the superblock path, repeatedly: the
        module (and its deopt bookkeeping) must stay bit-identical."""
        ref = execute(prog, Memory(), collect_trace=True)
        cg = CodegenProgram(prog, cache=None, min_count=1, ratio=0.0)
        for _ in range(2 + reruns):
            hot = cg.execute(Memory(), collect_trace=True)
            _assert_matches(hot, ref, collect_trace=True)


class TestFastProgramBehaviour:
    def test_compiled_object_is_reusable(self, sum_loop):
        fast = compile_fast(sum_loop)
        assert isinstance(fast, FastProgram)
        first = fast.execute(Memory(), collect_trace=True)
        second = fast.execute(Memory(), collect_trace=True)
        assert first.trace == second.trace
        assert first.registers == second.registers
        assert first.memory.data_image() == second.memory.data_image()

    def test_limit_exceeded_message_parity(self, sum_loop):
        with pytest.raises(ExecutionLimitExceeded) as ref_exc:
            execute(sum_loop, Memory(), max_steps=10)
        with pytest.raises(ExecutionLimitExceeded) as fast_exc:
            execute_fast(sum_loop, Memory(), max_steps=10)
        assert str(fast_exc.value) == str(ref_exc.value)

    def test_limit_not_raised_at_exact_budget(self, sum_loop):
        ref = execute(sum_loop, Memory())
        fast = execute_fast(sum_loop, Memory(), max_steps=ref.steps)
        assert fast.steps == ref.steps

    def test_partial_register_initialisation(self, diamond):
        reg = sorted(diamond.all_registers(), key=lambda r: r.index)[0]
        init = {reg: 7}
        ref = execute(diamond, Memory(), initial_registers=init)
        fast = execute_fast(diamond, Memory(), initial_registers=init)
        assert fast.registers == ref.registers
        assert fast.memory.data_image() == ref.memory.data_image()
