"""Differential parity: the fast backend vs the reference interpreter.

The fast backend (:mod:`repro.runtime.fastsim`) compiles each basic
block to a closed-over Python step function and replays it; the ISSUE
for this change requires it to be *bit-identical* to the golden
interpreter — same dynamic trace, same memory image, same final
registers, same step count — and therefore to produce identical timing
statistics (cycles, store-buffer stalls, CLQ/coloring counters) when the
trace is fed to the in-order core.

This suite enforces that on every benchmark of the 36-entry suite, on
the full scheme sweep for the quick subset, and on randomized programs
from the hypothesis generator shared with ``test_properties``.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings

from repro.arch import CoreConfig, InOrderCore, ResilienceHardwareConfig
from repro.compiler.config import turnpike_config, turnstile_config
from repro.compiler.pipeline import compile_baseline, compile_program
from repro.runtime.fastsim import FastProgram, compile_fast, execute_fast
from repro.runtime.interpreter import ExecutionLimitExceeded, execute
from repro.runtime.memory import Memory
from repro.workloads.generator import build_workload
from repro.workloads.suites import all_profiles, profile, quick_subset

from test_properties import random_programs

ALL_UIDS = [p.uid for p in all_profiles()]
QUICK_UIDS = [p.uid for p in quick_subset()]


def assert_parity(program, make_memory, collect_trace=True, max_steps=2_000_000):
    """Run both backends on fresh memories and compare everything."""
    ref = execute(
        program, make_memory(), max_steps=max_steps, collect_trace=collect_trace
    )
    fast = execute_fast(
        program, make_memory(), max_steps=max_steps, collect_trace=collect_trace
    )
    assert fast.steps == ref.steps
    assert fast.registers == ref.registers
    assert fast.memory.data_image() == ref.memory.data_image()
    if collect_trace:
        assert fast.trace == ref.trace
    else:
        assert fast.trace is None and ref.trace is None
    return ref, fast


class TestBenchmarkParity:
    """Stat-for-stat equality on the full 36-benchmark suite."""

    @pytest.mark.parametrize("uid", ALL_UIDS)
    def test_turnpike_build_parity(self, uid):
        workload = build_workload(profile(uid))
        compiled = compile_program(workload.program, turnpike_config())
        assert_parity(compiled.program, workload.fresh_memory)

    @pytest.mark.parametrize("uid", QUICK_UIDS)
    @pytest.mark.parametrize("scheme", ["baseline", "turnstile", "turnpike"])
    def test_scheme_sweep_timing_parity(self, uid, scheme):
        workload = build_workload(profile(uid))
        if scheme == "baseline":
            compiled = compile_baseline(workload.program)
            hw = ResilienceHardwareConfig.baseline()
        elif scheme == "turnstile":
            compiled = compile_program(workload.program, turnstile_config())
            hw = ResilienceHardwareConfig.turnstile(wcdl=10)
        else:
            compiled = compile_program(workload.program, turnpike_config())
            hw = ResilienceHardwareConfig.turnpike(wcdl=10)
        ref, fast = assert_parity(compiled.program, workload.fresh_memory)
        ref_stats = InOrderCore(CoreConfig(), hw).run(ref.trace)
        fast_stats = InOrderCore(CoreConfig(), hw).run(fast.trace)
        assert fast_stats == ref_stats
        assert fast_stats.cycles == ref_stats.cycles
        assert fast_stats.sb_stall_cycles == ref_stats.sb_stall_cycles
        assert fast_stats.clq_occupancy_avg == ref_stats.clq_occupancy_avg
        assert fast_stats.colored_released == ref_stats.colored_released

    @pytest.mark.parametrize("uid", QUICK_UIDS)
    def test_untraced_parity(self, uid):
        workload = build_workload(profile(uid))
        compiled = compile_program(workload.program, turnpike_config())
        assert_parity(compiled.program, workload.fresh_memory, collect_trace=False)


_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestRandomProgramParity:
    """Hypothesis: parity holds for arbitrary generated programs too."""

    @given(random_programs())
    @_SETTINGS
    def test_source_program_parity(self, prog):
        assert_parity(prog, Memory)

    @given(random_programs())
    @_SETTINGS
    def test_compiled_program_parity(self, prog):
        for compiled in (
            compile_baseline(prog),
            compile_program(prog, turnstile_config()),
            compile_program(prog, turnpike_config()),
        ):
            assert_parity(compiled.program, Memory)


class TestFastProgramBehaviour:
    def test_compiled_object_is_reusable(self, sum_loop):
        fast = compile_fast(sum_loop)
        assert isinstance(fast, FastProgram)
        first = fast.execute(Memory(), collect_trace=True)
        second = fast.execute(Memory(), collect_trace=True)
        assert first.trace == second.trace
        assert first.registers == second.registers
        assert first.memory.data_image() == second.memory.data_image()

    def test_limit_exceeded_message_parity(self, sum_loop):
        with pytest.raises(ExecutionLimitExceeded) as ref_exc:
            execute(sum_loop, Memory(), max_steps=10)
        with pytest.raises(ExecutionLimitExceeded) as fast_exc:
            execute_fast(sum_loop, Memory(), max_steps=10)
        assert str(fast_exc.value) == str(ref_exc.value)

    def test_limit_not_raised_at_exact_budget(self, sum_loop):
        ref = execute(sum_loop, Memory())
        fast = execute_fast(sum_loop, Memory(), max_steps=ref.steps)
        assert fast.steps == ref.steps

    def test_partial_register_initialisation(self, diamond):
        reg = sorted(diamond.all_registers(), key=lambda r: r.index)[0]
        init = {reg: 7}
        ref = execute(diamond, Memory(), initial_registers=init)
        fast = execute_fast(diamond, Memory(), initial_registers=init)
        assert fast.registers == ref.registers
        assert fast.memory.data_image() == ref.memory.data_image()
