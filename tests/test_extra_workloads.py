"""Tests for the extended kernel library and the EXTRAS suite.

Each extra benchmark must survive the complete gauntlet: functional
equivalence under every compiler configuration, a fault-free resilient
run, and recovery from injected errors.
"""

import pytest

from repro.compiler.config import figure21_configs, turnpike_config
from repro.compiler.pipeline import compile_baseline, compile_program
from repro.faults.campaign import (
    run_protocol_campaigns,
    turnpike_machine_config,
)
from repro.runtime.interpreter import execute
from repro.runtime.machine import ResilientMachine
from repro.workloads.extras import extra_profiles, load_extra_workload

NAMES = [p.name for p in extra_profiles()]


class TestExtraSuite:
    def test_four_profiles(self):
        assert len(extra_profiles()) == 4

    def test_not_in_main_suite(self):
        from repro.workloads.suites import all_profiles

        main_uids = {p.uid for p in all_profiles()}
        for prof in extra_profiles():
            assert prof.uid not in main_uids

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            load_extra_workload("quantum")


@pytest.mark.parametrize("name", NAMES)
class TestExtraBenchmarks:
    def test_runs(self, name):
        wl = load_extra_workload(name)
        result = execute(wl.program, wl.fresh_memory())
        assert result.steps > 500

    def test_all_configs_equivalent(self, name):
        wl = load_extra_workload(name)
        golden = execute(wl.program, wl.fresh_memory()).memory.data_image()
        base = compile_baseline(wl.program)
        assert (
            execute(base.program, wl.fresh_memory()).memory.data_image()
            == golden
        )
        for label, cfg, _ in figure21_configs():
            compiled = compile_program(wl.program, cfg)
            got = execute(
                compiled.program, wl.fresh_memory()
            ).memory.data_image()
            assert got == golden, f"{name}/{label}"

    def test_faultfree_resilient_run(self, name):
        wl = load_extra_workload(name)
        compiled = compile_program(wl.program, turnpike_config())
        golden = execute(
            compiled.program, wl.fresh_memory()
        ).memory.data_image()
        machine = ResilientMachine(
            compiled, turnpike_machine_config(10), wl.fresh_memory()
        )
        machine.run()
        assert machine.mem.data_image() == golden

    def test_recovery_under_injection(self, name):
        wl = load_extra_workload(name)
        compiled = compile_program(wl.program, turnpike_config())
        campaigns = run_protocol_campaigns(
            compiled, wl.fresh_memory(), wcdl=10, count=8, seed=55
        )
        assert campaigns.turnpike.correct_runs == campaigns.turnpike.runs
        assert campaigns.turnstile.correct_runs == campaigns.turnstile.runs


class TestKernelValidation:
    def test_merge_trip_capped(self):
        from repro.workloads.generator import BenchmarkProfile, KernelSpec, build_workload
        import repro.workloads.extra_kernels  # noqa: F401

        prof = BenchmarkProfile(
            name="bad",
            suite="EXTRAS",
            kernels=(
                KernelSpec("merge_pass", {"trip": 10_000, "run_words": 64}),
            ),
        )
        with pytest.raises(ValueError, match="exceed"):
            build_workload(prof)

    def test_spmv_vector_pow2(self):
        from repro.workloads.generator import BenchmarkProfile, KernelSpec, build_workload
        import repro.workloads.extra_kernels  # noqa: F401

        prof = BenchmarkProfile(
            name="bad2",
            suite="EXTRAS",
            kernels=(
                KernelSpec(
                    "spmv", {"rows": 4, "nnz_per_row": 2, "vector_words": 100}
                ),
            ),
        )
        with pytest.raises(ValueError, match="power of two"):
            build_workload(prof)
