"""Expanded SEU target model: strikes into every protected structure.

The hardening claims under test:

* CLQ, coloring, checkpoint-storage, PC, and memory strikes under full
  Turnpike are always *contained* (masked, recovered, or fail-stop) —
  never silent corruption, never a protocol crash;
* a parity-bad CLQ entry answers WAR queries conservatively, so a
  narrowed range can never unsafely enable fast release;
* a parity-bad color map degrades fail-safe to quarantine-only;
* store-buffer strikes are contained under all safe protocol variants
  (and even the unsafe variant never crashes the model).
"""

import pytest

from repro.arch.clq import CompactCLQ, IdealCLQ
from repro.arch.coloring import ColorMaps, QUARANTINE
from repro.compiler.config import turnpike_config
from repro.compiler.pipeline import compile_program
from repro.faults.campaign import (
    VARIANT_CONFIGS,
    _horizon,
    turnpike_machine_config,
)
from repro.faults.injector import (
    FaultOutcomeKind,
    golden_memory,
    random_mixed_injections,
    run_with_injection,
)
from repro.runtime.machine import InjectionTarget


@pytest.fixture(scope="module")
def bzip2_setup():
    from repro.workloads.suites import load_workload

    wl = load_workload("CPU2006.bzip2")
    compiled = compile_program(wl.program, turnpike_config())
    memory = wl.fresh_memory()
    golden = golden_memory(compiled, memory)
    horizon = _horizon(compiled, memory)
    return compiled, memory, golden, horizon


UNCONTAINED = {
    FaultOutcomeKind.SDC,
    FaultOutcomeKind.PROTOCOL_BUG,
    FaultOutcomeKind.TIMEOUT,
}


class TestStructureStrikesUnderTurnpike:
    @pytest.mark.parametrize(
        "target",
        [
            InjectionTarget.CLQ,
            InjectionTarget.COLORING,
            InjectionTarget.CHECKPOINT,
            InjectionTarget.PC,
            InjectionTarget.MEMORY,
        ],
    )
    def test_strikes_are_contained(self, bzip2_setup, target):
        compiled, memory, golden, horizon = bzip2_setup
        injections = random_mixed_injections(
            compiled, wcdl=10, count=5, seed=13, horizon=horizon,
            targets=(target,),
        )
        for injection in injections:
            outcome = run_with_injection(
                compiled, turnpike_machine_config(10), memory, injection,
                golden,
            )
            assert outcome.kind not in UNCONTAINED, (
                f"{target.value} strike at t={injection.time} "
                f"bits={injection.bit_positions}: {outcome.kind.value} "
                f"({outcome.error})"
            )
            if outcome.kind is not FaultOutcomeKind.DETECTED_HALT:
                assert outcome.correct


class TestStoreBufferAcrossVariants:
    """Satellite: SB strikes exercised under all four protocol variants."""

    @pytest.mark.parametrize("variant", ["turnstile", "warfree", "turnpike"])
    def test_safe_variants_contain_sb_strikes(self, bzip2_setup, variant):
        compiled, memory, golden, horizon = bzip2_setup
        injections = random_mixed_injections(
            compiled, wcdl=10, count=6, seed=29, horizon=horizon,
            targets=(InjectionTarget.STORE_BUFFER,),
        )
        config = VARIANT_CONFIGS[variant](10)
        for injection in injections:
            outcome = run_with_injection(
                compiled, config, memory, injection, golden
            )
            assert outcome.kind not in UNCONTAINED, (
                f"{variant}: SB strike at t={injection.time} -> "
                f"{outcome.kind.value} ({outcome.error})"
            )
            if outcome.kind is not FaultOutcomeKind.DETECTED_HALT:
                assert outcome.correct

    def test_unsafe_variant_never_crashes_on_sb_strikes(self, bzip2_setup):
        compiled, memory, golden, horizon = bzip2_setup
        injections = random_mixed_injections(
            compiled, wcdl=10, count=6, seed=29, horizon=horizon,
            targets=(InjectionTarget.STORE_BUFFER,),
        )
        config = VARIANT_CONFIGS["unsafe"](10)
        for injection in injections:
            outcome = run_with_injection(
                compiled, config, memory, injection, golden
            )
            # SDC is the expected Figure 16 failure mode; what is NOT
            # acceptable is the model itself crashing or livelocking.
            assert outcome.kind not in (
                FaultOutcomeKind.PROTOCOL_BUG,
                FaultOutcomeKind.TIMEOUT,
            )


class TestCLQParityFailSafe:
    def test_ideal_clq_answers_conservatively_after_strike(self):
        clq = IdealCLQ()
        clq.begin_region(0)
        clq.record_load(0, 0x100)
        clq.record_load(0, 0x104)
        assert clq.corrupt(bit=5)
        # The struck instance must report a WAR conflict for EVERY
        # address — including ones its (corrupted) range would exclude.
        assert clq.store_has_war(0, 0x9999)
        assert clq.stats.parity_conservative >= 1
        # The hardware also stops inserting into the untrusted entry.
        inserted = clq.stats.loads_inserted
        clq.record_load(0, 0x200)
        assert clq.stats.loads_inserted == inserted

    def test_compact_clq_answers_conservatively_after_strike(self):
        clq = CompactCLQ(size=2)
        clq.begin_region(0)
        clq.record_load(0, 0x100)
        clq.record_load(0, 0x140)
        assert not clq.store_has_war(0, 0x9999)
        assert clq.corrupt(bit=4)
        assert clq.store_has_war(0, 0x9999)
        assert clq.stats.parity_conservative >= 1

    def test_corrupt_with_no_populated_entries_is_a_miss(self):
        assert not IdealCLQ().corrupt(bit=3)
        assert not CompactCLQ().corrupt(bit=3)


class TestColoringParityFailSafe:
    def test_struck_maps_degrade_to_quarantine(self):
        maps = ColorMaps(num_registers=8, num_colors=4)
        color = maps.assign(instance=1, reg=3)
        assert color != QUARANTINE
        assert maps.corrupt(bit=2)
        assert maps.parity_bad and not maps.poisoned
        # First access after the strike observes the failure: fail-safe.
        assert maps.assign(instance=1, reg=5) == QUARANTINE
        assert maps.poisoned
        assert maps.stats.parity_fallbacks == 1
        # Every later assignment stays quarantined too.
        assert maps.assign(instance=2, reg=6) == QUARANTINE

    def test_corrupt_with_no_entries_is_a_miss(self):
        assert not ColorMaps().corrupt(bit=0)
