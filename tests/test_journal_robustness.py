"""Journal edge cases: torn writes at the compaction boundary,
compaction racing a concurrent appender, forward-compat skip of
newer-schema events, and stale-endpoint detection."""

from __future__ import annotations

import json
import os
import subprocess
import sys

from repro.service.jobs import JobRecord, JobSpec, JobState, job_key
from repro.service.journal import (
    SCHEMA_VERSION,
    Journal,
    pid_alive,
)

UID = "CPU2006.gcc"


def make_record(job_id: str = "j-1", uid: str = UID) -> JobRecord:
    spec = JobSpec.create("run", {"uid": uid})
    return JobRecord(id=job_id, spec=spec, key=job_key(spec), client="t")


class TestTornWrites:
    def test_torn_final_line_is_skipped(self, tmp_path):
        journal = Journal(tmp_path)
        journal.record_submit(make_record("j-1"))
        journal.record_submit(make_record("j-2", uid="CPU2006.mcf"))
        journal.close()
        # Simulate kill -9 mid-append: truncate inside the last line.
        raw = journal.log_path.read_bytes()
        journal.log_path.write_bytes(raw[: len(raw) - 17])

        jobs = Journal(tmp_path).replay()
        assert set(jobs) == {"j-1"}

    def test_torn_line_at_compaction_boundary(self, tmp_path):
        """Crash half-way through an append, then compact: the torn tail
        must neither survive compaction nor corrupt the rewritten log."""
        journal = Journal(tmp_path)
        journal.record_submit(make_record("j-1"))
        journal.close()
        with open(journal.log_path, "a", encoding="utf-8") as fh:
            fh.write('{"ev": "submit", "job": {"id": "j-2", "ki')  # no \n

        survivor = Journal(tmp_path)
        jobs = survivor.replay()
        assert set(jobs) == {"j-1"}
        survivor.compact(jobs)

        # The compacted log is fully well-formed JSONL again.
        lines = survivor.log_path.read_text().splitlines()
        assert len(lines) == 1
        event = json.loads(lines[0])
        assert event["ev"] == "submit" and event["job"]["id"] == "j-1"
        assert event["v"] == SCHEMA_VERSION
        # And a post-compaction append lands on a clean boundary.
        survivor.record_state(jobs["j-1"])
        replayed = Journal(tmp_path).replay()
        assert set(replayed) == {"j-1"}

    def test_garbage_and_blank_lines_skipped(self, tmp_path):
        journal = Journal(tmp_path)
        journal.record_submit(make_record("j-1"))
        journal.close()
        with open(journal.log_path, "a", encoding="utf-8") as fh:
            fh.write("\n")
            fh.write("not json at all\n")
            fh.write('"a bare string, not an object"\n')
            fh.write('{"ev": "state", "id": "ghost", "state": "done"}\n')
        jobs = Journal(tmp_path).replay()
        assert set(jobs) == {"j-1"}
        assert jobs["j-1"].state is JobState.QUEUED


class TestCompactionRace:
    def test_compaction_racing_concurrent_append(self, tmp_path):
        """Two handles on one journal: B compacts while A still holds an
        open append handle. A's post-compaction write goes to the
        orphaned inode (an accepted, bounded loss — one state event),
        but the log itself must stay well-formed and replayable."""
        writer = Journal(tmp_path)
        record = make_record("j-1")
        writer.record_submit(record)

        compactor = Journal(tmp_path)
        jobs = compactor.replay()
        compactor.compact(jobs)

        # Racing append through the stale pre-compaction handle.
        record.state = JobState.RUNNING
        writer.record_state(record)

        replayed = Journal(tmp_path).replay()
        assert set(replayed) == {"j-1"}
        # The stale-handle write is lost, never interleaved as garbage:
        for line in compactor.log_path.read_text().splitlines():
            json.loads(line)

    def test_append_after_compaction_with_fresh_handle(self, tmp_path):
        """A journal that compacts its *own* log reopens the new inode,
        so subsequent appends are durable."""
        journal = Journal(tmp_path)
        record = make_record("j-1")
        journal.record_submit(record)
        journal.compact({record.id: record})

        record.state = JobState.DONE
        journal.record_state(record)
        journal.close()

        replayed = Journal(tmp_path).replay()
        assert replayed["j-1"].state is JobState.DONE


class TestForwardCompat:
    def test_newer_schema_version_events_are_skipped(self, tmp_path):
        journal = Journal(tmp_path)
        record = make_record("j-1")
        journal.record_submit(record)
        # A submit and a state event stamped by a hypothetical newer
        # server generation: invisible, not misparsed.
        journal.append(
            {
                "ev": "submit",
                "v": SCHEMA_VERSION + 1,
                "job": {"id": "j-future", "shape": "unknowable"},
            }
        )
        journal.append(
            {
                "ev": "state",
                "v": SCHEMA_VERSION + 1,
                "id": "j-1",
                "state": "paused",  # not a valid JobState today
            }
        )
        journal.close()

        jobs = Journal(tmp_path).replay()
        assert set(jobs) == {"j-1"}
        assert jobs["j-1"].state is JobState.QUEUED

    def test_current_version_is_stamped_on_append(self, tmp_path):
        journal = Journal(tmp_path)
        journal.record_submit(make_record("j-1"))
        journal.close()
        event = json.loads(journal.log_path.read_text().splitlines()[0])
        assert event["v"] == SCHEMA_VERSION

    def test_unversioned_legacy_events_still_replay(self, tmp_path):
        journal = Journal(tmp_path)
        record = make_record("j-1")
        with open(journal.log_path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps({"ev": "submit", "job": record.to_dict()}))
            fh.write("\n")
        jobs = journal.replay()
        assert set(jobs) == {"j-1"}


class TestEndpointStaleness:
    def test_pid_alive(self):
        assert pid_alive(os.getpid())
        assert not pid_alive(-1)
        assert not pid_alive(0)
        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()
        assert not pid_alive(proc.pid)

    def test_status_transitions(self, tmp_path):
        journal = Journal(tmp_path)
        assert journal.endpoint_status() == "absent"

        journal.write_endpoint("127.0.0.1", 4242)
        assert journal.endpoint_status() == "live"
        assert journal.read_endpoint() == ("127.0.0.1", 4242)
        assert journal.read_endpoint_pid() == os.getpid()

        # Endpoint file without a PID record: a pre-PID generation.
        journal.server_pid_path.unlink()
        assert journal.endpoint_status() == "unknown"

        # PID record pointing at a provably dead process: the kill -9
        # signature.
        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()
        journal.write_endpoint("127.0.0.1", 4242, pid=proc.pid)
        assert journal.endpoint_status() == "stale"

        journal.clear_endpoint()
        assert journal.endpoint_status() == "absent"
        assert not journal.server_pid_path.exists()

    def test_endpoint_file_format_is_bare_host_port(self, tmp_path):
        """Scripts `$(cat)` the endpoint file; the PID must live in the
        sibling file, never inline."""
        journal = Journal(tmp_path)
        journal.write_endpoint("localhost", 8080)
        assert journal.endpoint_path.read_text() == "localhost:8080\n"
