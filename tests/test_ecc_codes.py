"""Exhaustive guarantee tests for the real ECC encode/decode machinery.

Each code's headline guarantee is checked by *enumerating* the error
class, not by sampling: SEC-DED (72,64) corrects all 72 singles and
detects all 2556 doubles, SEC-DAEC corrects every adjacent double,
DEC-TED corrects every double and detects sampled triples — and the
honest negatives hold too: even parity passes doubles silently, and a
plain SEC Hamming *miscorrects* most adjacent doubles (the reachable
``miscorrected`` outcome the injector models).
"""

from __future__ import annotations

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.ecc.codes import (
    CODE_NAMES,
    CONTAINED_VERDICTS,
    SEVERITY,
    Verdict,
    make_code,
    secded_72_64,
)

WIDTHS = (8, 16, 32, 64)


class TestConstruction:
    @pytest.mark.parametrize("name", CODE_NAMES)
    @pytest.mark.parametrize("k", WIDTHS)
    def test_geometry(self, name, k):
        code = make_code(name, k)
        assert code.k == k
        assert code.n == code.k + code.r
        assert len(code.columns) == code.n
        assert len(code.data_positions) == code.k

    def test_make_code_is_memoised(self):
        assert make_code("secded", 32) is make_code("secded", 32)

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError, match="unknown code"):
            make_code("golay", 32)

    def test_encode_range_checked(self):
        code = make_code("parity", 8)
        with pytest.raises(ValueError, match="out of range"):
            code.encode(1 << 8)
        with pytest.raises(ValueError, match="out of range"):
            code.encode(-1)

    def test_codewords_have_zero_syndrome(self):
        for name in CODE_NAMES:
            code = make_code(name, 16)
            for data in (0, 1, 0xBEEF, (1 << 16) - 1):
                assert code.syndrome(code.encode(data)) == 0


class TestSecDed7264:
    """The canonical DRAM geometry, enumerated in full."""

    def test_geometry_is_72_64(self):
        code = secded_72_64()
        assert (code.n, code.k) == (72, 64)

    def test_all_72_singles_corrected(self):
        code = secded_72_64()
        for i in range(code.n):
            assert code.verdict(0, 1 << i) is Verdict.CORRECTED

    def test_all_2556_doubles_detected(self):
        code = secded_72_64()
        doubles = list(itertools.combinations(range(code.n), 2))
        assert len(doubles) == 2556
        for i, j in doubles:
            assert code.verdict(0, (1 << i) | (1 << j)) is Verdict.DETECTED

    def test_nonzero_data_round_trips(self):
        code = secded_72_64()
        rng = random.Random(7)
        for _ in range(32):
            data = rng.getrandbits(64)
            flipped = code.encode(data) ^ (1 << rng.randrange(code.n))
            result = code.decode(flipped)
            assert not result.detected
            assert result.data == data


class TestParity:
    def test_singles_detected_doubles_silent(self):
        code = make_code("parity", 32)
        for i in range(code.n):
            assert code.verdict(0, 1 << i) is Verdict.DETECTED
        for i, j in itertools.combinations(range(code.n), 2):
            assert code.verdict(0, (1 << i) | (1 << j)) is Verdict.SILENT


class TestPlainSec:
    """The honest negative: plain Hamming miscorrects doubles."""

    def test_all_singles_corrected(self):
        code = make_code("sec", 32)
        for i in range(code.n):
            assert code.verdict(0, 1 << i) is Verdict.CORRECTED

    def test_adjacent_doubles_mostly_miscorrect(self):
        code = make_code("sec", 32)
        verdicts = [
            code.verdict(0, 0b11 << i) for i in range(code.n - 1)
        ]
        assert Verdict.MISCORRECTED in verdicts
        miscorrected = sum(v is Verdict.MISCORRECTED for v in verdicts)
        # Syndrome aliasing dominates: most pair-sums hit a third column.
        assert miscorrected > len(verdicts) // 2
        # The rest fall into shortened-code syndrome gaps (detect), and
        # none are ever silently passed or "corrected" to the truth.
        assert all(
            v in (Verdict.MISCORRECTED, Verdict.DETECTED) for v in verdicts
        )


class TestSecDaec:
    def test_all_singles_corrected(self):
        code = make_code("secdaec", 32)
        for i in range(code.n):
            assert code.verdict(0, 1 << i) is Verdict.CORRECTED

    @pytest.mark.parametrize("k", WIDTHS)
    def test_all_adjacent_doubles_corrected(self, k):
        code = make_code("secdaec", k)
        for i in range(code.n - 1):
            assert code.verdict(0, 0b11 << i) is Verdict.CORRECTED

    def test_non_adjacent_doubles_contained(self):
        """Distant doubles must never be silently passed."""
        code = make_code("secdaec", 32)
        for i, j in itertools.combinations(range(code.n), 2):
            if j == i + 1:
                continue
            assert code.verdict(0, (1 << i) | (1 << j)) is not Verdict.SILENT


class TestBchDecTed:
    def test_all_singles_and_doubles_corrected(self):
        code = make_code("bch", 32)
        for i in range(code.n):
            assert code.verdict(0, 1 << i) is Verdict.CORRECTED
        for i, j in itertools.combinations(range(code.n), 2):
            assert code.verdict(0, (1 << i) | (1 << j)) is Verdict.CORRECTED

    def test_sampled_triples_detected(self):
        code = make_code("bch", 32)
        rng = random.Random(11)
        for _ in range(300):
            i, j, l = rng.sample(range(code.n), 3)
            error = (1 << i) | (1 << j) | (1 << l)
            assert code.verdict(0, error) is Verdict.DETECTED


class TestAlgebraicStructure:
    @given(
        name=st.sampled_from(CODE_NAMES),
        k=st.sampled_from(WIDTHS),
        data=st.integers(min_value=0),
    )
    @settings(max_examples=120, deadline=None)
    def test_round_trip_decode_of_clean_word(self, name, k, data):
        code = make_code(name, k)
        data &= (1 << k) - 1
        result = code.decode(code.encode(data))
        assert result.data == data
        assert not result.detected
        assert result.corrected_mask == 0

    @given(
        name=st.sampled_from(CODE_NAMES),
        data=st.integers(min_value=0),
        error=st.integers(min_value=1),
    )
    @settings(max_examples=120, deadline=None)
    def test_verdict_is_data_independent(self, name, data, error):
        """Linearity: the verdict depends only on the error vector."""
        code = make_code(name, 32)
        data &= (1 << code.k) - 1
        error &= (1 << code.n) - 1
        assert code.verdict(data, error) is code.verdict(0, error)

    def test_severity_order_is_total(self):
        assert len(SEVERITY) == len(set(SEVERITY)) == len(Verdict)
        assert SEVERITY.index(Verdict.MISCORRECTED) > SEVERITY.index(
            Verdict.SILENT
        )
        assert CONTAINED_VERDICTS < set(SEVERITY)
