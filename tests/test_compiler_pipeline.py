"""End-to-end compiler pipeline and recovery-map tests."""

import pytest

from repro.compiler.config import (
    CompilerConfig,
    figure21_configs,
    turnpike_config,
    turnstile_config,
)
from repro.compiler.pipeline import compile_baseline, compile_program
from repro.compiler.recovery import build_recovery_map, checkpoint_coverage_gaps
from repro.runtime.interpreter import execute

from helpers import build_sum_loop


class TestConfigs:
    def test_turnstile_has_no_turnpike_passes(self):
        cfg = turnstile_config()
        assert not cfg.checkpoint_pruning
        assert not cfg.licm_sinking
        assert not cfg.induction_variable_merging
        assert not cfg.instruction_scheduling
        assert not cfg.store_aware_regalloc

    def test_turnpike_enables_everything(self):
        cfg = turnpike_config()
        assert cfg.checkpoint_pruning and cfg.licm_sinking
        assert cfg.induction_variable_merging and cfg.instruction_scheduling
        assert cfg.store_aware_regalloc

    def test_region_caps(self):
        assert turnstile_config(sb_size=4).max_stores_per_region == 4
        assert turnpike_config(sb_size=4).max_stores_per_region == 2
        assert turnpike_config(sb_size=10).max_stores_per_region == 5

    def test_figure21_has_eight_configs(self):
        configs = figure21_configs()
        assert len(configs) == 8
        labels = [c[0] for c in configs]
        assert labels[0] == "Turnstile"
        assert labels[-1] == "Turnpike"

    def test_figure21_flags_monotone(self):
        configs = figure21_configs()
        # Turnstile: no hardware bypass; everything after: CLQ on.
        assert configs[0][2] == {"clq": False, "coloring": False}
        assert configs[1][2] == {"clq": True, "coloring": False}
        for _, _, flags in configs[2:]:
            assert flags == {"clq": True, "coloring": True}

    def test_config_names_unique(self):
        names = [c[1].name for c in figure21_configs()]
        assert len(set(names)) == len(names)


class TestPipeline:
    def test_baseline_has_no_resilience(self, gcc_baseline):
        prog = gcc_baseline.program
        assert not any(i.is_boundary or i.is_checkpoint for i in prog.instructions())
        assert gcc_baseline.recovery is None
        assert gcc_baseline.partition is None

    def test_turnstile_has_regions_and_checkpoints(self, gcc_turnstile):
        assert gcc_turnstile.partition is not None
        assert gcc_turnstile.recovery is not None
        assert gcc_turnstile.num_static_checkpoints > 0

    def test_turnpike_fewer_checkpoints_than_turnstile(
        self, gcc_turnstile, gcc_turnpike
    ):
        # With the same region density, pruning/LIVM/LICM can only remove.
        assert (
            gcc_turnpike.num_static_checkpoints
            <= gcc_turnstile.num_static_checkpoints + 4
        )

    def test_source_not_mutated(self, gcc_workload):
        before = gcc_workload.program.num_instructions
        compile_program(gcc_workload.program, turnpike_config())
        assert gcc_workload.program.num_instructions == before

    def test_all_figure21_configs_compile_and_run(self, gcc_workload):
        golden = execute(
            gcc_workload.program, gcc_workload.fresh_memory()
        ).memory.data_image()
        for label, cfg, _flags in figure21_configs():
            compiled = compile_program(gcc_workload.program, cfg)
            result = execute(compiled.program, gcc_workload.fresh_memory())
            assert result.memory.data_image() == golden, label

    def test_code_size_grows_with_resilience(self, gcc_baseline, gcc_turnpike):
        assert gcc_turnpike.code_size_bytes > gcc_baseline.code_size_bytes

    def test_stats_recorded_per_pass(self, gcc_turnpike):
        for key in ("strength_reduction", "livm", "regalloc", "checkpointing",
                    "pruning", "licm", "scheduling"):
            assert key in gcc_turnpike.stats


class TestRecoveryMap:
    def test_every_region_has_entry(self, gcc_turnpike):
        partition = gcc_turnpike.partition
        recovery = gcc_turnpike.recovery
        assert set(recovery.entries) == set(partition.regions)

    def test_entries_point_at_boundaries(self, gcc_turnpike):
        prog = gcc_turnpike.program
        for entry in gcc_turnpike.recovery.entries.values():
            instr = prog.block(entry.block).instructions[entry.index]
            assert instr.is_boundary
            assert instr.region_id == entry.region_id

    def test_duplicate_region_boundary_rejected(self):
        prog = build_sum_loop(trip=4)
        from repro.compiler.regions import partition_regions

        partition_regions(prog, max_stores=4)
        # Corrupt: duplicate a boundary with the same region id.
        from repro.isa.instructions import boundary

        dup = boundary()
        dup.region_id = 0
        prog.blocks[-1].instructions.insert(0, dup)
        with pytest.raises(ValueError, match="two boundaries"):
            build_recovery_map(prog)

    def test_coverage_no_gaps_on_turnstile(self, gcc_turnstile):
        assert checkpoint_coverage_gaps(gcc_turnstile.program) == []

    def test_coverage_no_gaps_on_turnpike(self, gcc_turnpike):
        assert checkpoint_coverage_gaps(gcc_turnpike.program) == []

    def test_coverage_gaps_on_all_workloads(self, quick_workloads):
        for wl in quick_workloads:
            for cfg in (turnstile_config(), turnpike_config()):
                compiled = compile_program(wl.program, cfg)
                assert checkpoint_coverage_gaps(compiled.program) == [], wl.name

    def test_live_in_registers_physical(self, gcc_turnpike):
        for entry in gcc_turnpike.recovery.entries.values():
            assert all(not r.is_virtual for r in entry.live_in)
