"""Edge-case coverage for :mod:`repro.harness.reporting`."""

from __future__ import annotations

import math

import pytest

from repro.harness.experiments import Series
from repro.harness.reporting import (
    format_breakdown_table,
    format_mapping_table,
    format_series_table,
)


class TestSeries:
    def test_geomean_of_single_element_is_identity(self):
        s = Series(name="one", per_benchmark={"CPU2006.bzip2": 1.37})
        assert s.geomean == pytest.approx(1.37)
        assert s.mean == pytest.approx(1.37)

    def test_geomean_and_mean_disagree_on_skewed_data(self):
        s = Series(name="skew", per_benchmark={"a": 1.0, "b": 4.0})
        assert s.geomean == pytest.approx(2.0)
        assert s.mean == pytest.approx(2.5)

    def test_geomean_matches_log_definition(self):
        values = {"a": 1.1, "b": 0.9, "c": 2.5}
        s = Series(name="log", per_benchmark=values)
        expect = math.exp(
            sum(math.log(v) for v in values.values()) / len(values)
        )
        assert s.geomean == pytest.approx(expect)


class TestFormatSeriesTable:
    def test_empty_series_list(self):
        assert format_series_table([]) == "(no data)"

    def test_single_benchmark_single_series(self):
        s = Series(name="DL10", per_benchmark={"SPLASH3.fft": 1.042})
        text = format_series_table([s])
        lines = text.splitlines()
        assert lines[0].split() == ["benchmark", "DL10"]
        assert "SPLASH3.fft" in text
        assert "1.04" in text
        # aggregate row of a one-element series repeats the value
        assert lines[-1].split() == ["geomean", "1.04"]

    def test_mean_aggregate_row(self):
        s = Series(name="x", per_benchmark={"a": 1.0, "b": 3.0})
        text = format_series_table([s], aggregate="mean")
        assert text.splitlines()[-1].split() == ["mean", "2.00"]

    def test_title_and_underline(self):
        s = Series(name="x", per_benchmark={"a": 1.0})
        text = format_series_table([s], title="Figure N")
        lines = text.splitlines()
        assert lines[0] == "Figure N"
        assert lines[1] == "=" * len("Figure N")

    def test_value_format_is_honoured(self):
        s = Series(name="x", per_benchmark={"a": 0.123456})
        assert "0.123" in format_series_table([s], value_format="{:.3f}")

    def test_multiple_series_column_order(self):
        a = Series(name="left", per_benchmark={"u": 1.0})
        b = Series(name="right", per_benchmark={"u": 2.0})
        header = format_series_table([a, b]).splitlines()[0]
        assert header.index("left") < header.index("right")

    def test_rows_follow_first_series_key_order(self):
        s = Series(name="x", per_benchmark={"zeta": 1.0, "alpha": 2.0})
        text = format_series_table([s])
        assert text.index("zeta") < text.index("alpha")


class TestMappingAndBreakdownTables:
    def test_mapping_table_single_row(self):
        text = format_mapping_table(
            {"CPU2017.lbm": (3.5, 12.0)}, headers=("avg", "max")
        )
        lines = text.splitlines()
        assert lines[0].split() == ["benchmark", "avg", "max"]
        assert lines[-1].split() == ["CPU2017.lbm", "3.50", "12.00"]

    def test_breakdown_rows_sum_to_one(self):
        from repro.harness.experiments import BREAKDOWN_CATEGORIES

        row = {cat: 1.0 / len(BREAKDOWN_CATEGORIES)
               for cat in BREAKDOWN_CATEGORIES}
        text = format_breakdown_table({"u": row})
        assert "u" in text
        assert text.count("14.3%") == len(BREAKDOWN_CATEGORIES)
