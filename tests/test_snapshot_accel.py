"""Snapshot-accelerated fault injection: parity, soundness, and audits.

The acceleration contract under test: golden-run memoization, snapshot
fast-forward, and convergence early-exit must be *observationally
invisible* — every accelerated :class:`InjectionOutcome` equals the
from-scratch one, for every variant, target, and snapshot interval
(including the degenerate no-snapshot configuration).  On top of the
parity sweep this file audits the machinery itself: the snapshot field
audit fails loudly on unknown machine state, restore reproduces the
machine exactly (full-state canonical equality, not merely observable
equality), the timeout splice reproduces the watchdog's exact behaviour,
and golden records round-trip through the persistent artifact cache.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from helpers import build_sum_loop
from repro.compiler.config import turnpike_config
from repro.compiler.pipeline import compile_program
from repro.faults.campaign import VARIANT_CONFIGS, _horizon
from repro.faults.injector import (
    DEFAULT_TARGET_MIX,
    golden_memory,
    injection_for_index,
    outcome_to_dict,
    run_with_injection,
)
from repro.faults.snapshot import (
    ConvergedExit,
    GoldenRecord,
    full_state_canonical,
    prepare_accelerated_run,
    record_golden_run,
)
from repro.harness.artifacts import ArtifactCache
from repro.runtime.machine import (
    ResilientMachine,
    SnapshotError,
    WatchdogTimeout,
    memory_fingerprint,
)
from repro.runtime.memory import Memory


@pytest.fixture(scope="module")
def ctx():
    """Compiled sum-loop + golden image shared by the whole module."""
    compiled = compile_program(build_sum_loop(), turnpike_config())
    memory = Memory()
    golden = golden_memory(compiled, memory)
    horizon = _horizon(compiled, memory)
    return compiled, memory, golden, horizon


def _turnpike(wcdl: int = 10):
    return VARIANT_CONFIGS["turnpike"](wcdl)


class TestGoldenRecord:
    def test_record_shape(self, ctx):
        compiled, memory, golden, _ = ctx
        rec = record_golden_run(
            compiled, _turnpike(), memory, interval=16, golden_image=golden
        )
        assert rec.total_ticks > 0
        assert len(rec.fp_index) > 0
        assert rec.snap_times == sorted(rec.snap_times)
        assert len(rec.snap_times) == len(rec.snapshots)
        # Every fingerprint maps into the run's tick/step span.
        for tick, steps in rec.fp_index.values():
            assert 0 < tick <= rec.total_ticks
            assert 0 < steps <= rec.total_steps

    def test_total_steps_is_exact(self, ctx):
        """The splice arithmetic hinges on total_steps being the precise
        loop-iteration count: max_steps == total succeeds, total-1 trips
        the watchdog."""
        compiled, memory, golden, _ = ctx
        rec = record_golden_run(
            compiled, _turnpike(), memory, interval=0, golden_image=golden
        )
        machine = ResilientMachine(
            compiled, _turnpike(), memory.copy(), max_steps=rec.total_steps
        )
        machine.run()
        machine = ResilientMachine(
            compiled, _turnpike(), memory.copy(),
            max_steps=rec.total_steps - 1,
        )
        with pytest.raises(WatchdogTimeout):
            machine.run()

    def test_interval_zero_records_no_snapshots(self, ctx):
        compiled, memory, golden, _ = ctx
        rec = record_golden_run(
            compiled, _turnpike(), memory, interval=0, golden_image=golden
        )
        assert rec.snapshots == [] and rec.interval is None

    def test_snapshot_index_is_strictly_before(self, ctx):
        compiled, memory, golden, _ = ctx
        rec = record_golden_run(
            compiled, _turnpike(), memory, interval=16, golden_image=golden
        )
        first = rec.snap_times[0]
        assert rec.snapshot_index_before(first) is None
        assert rec.snapshot_index_before(first + 1) == 0
        assert (
            rec.snapshot_index_before(rec.snap_times[-1] + 1)
            == len(rec.snapshots) - 1
        )

    def test_wrong_golden_image_fails_loudly(self, ctx):
        compiled, memory, _, _ = ctx
        with pytest.raises(SnapshotError, match="diverged"):
            record_golden_run(
                compiled, _turnpike(), memory, interval=16,
                golden_image={0: 0xDEAD},
            )


class TestSnapshotRestore:
    def test_restore_reproduces_machine_exactly(self, ctx):
        """Each snapshot restores to full-state canonical equality with a
        reference machine stopped at the same tick, and runs to the same
        terminal image and stats."""
        compiled, memory, golden, _ = ctx
        config = _turnpike()
        rec = record_golden_run(
            compiled, config, memory, interval=16, golden_image=golden
        )
        reference = ResilientMachine(compiled, config, memory.copy())
        ref_stats = reference.run()
        ref_image = reference.mem.data_image()
        for index, snap in enumerate(rec.snapshots):
            machine = ResilientMachine(compiled, config, memory.copy())
            machine.restore(snap, cells=rec.cells_at(index, memory.cells))
            # The restored machine is *exactly* the recorded one.
            probe = ResilientMachine(compiled, config, memory.copy())
            probe.restore(snap, cells=rec.cells_at(index, memory.cells))
            assert full_state_canonical(machine, snap.t) == \
                full_state_canonical(probe, snap.t)
            assert machine._mem_fp == memory_fingerprint(machine.mem.cells)
            stats = machine.run()
            assert machine.mem.data_image() == ref_image
            assert stats.committed == ref_stats.committed
            assert stats.regions == ref_stats.regions

    def test_unknown_machine_field_fails_loudly(self, ctx):
        """The field audit: any attribute snapshot() has no rule for is a
        SnapshotError, not silent state loss."""
        compiled, memory, _, _ = ctx
        machine = ResilientMachine(compiled, _turnpike(), memory.copy())
        machine._experimental_field = 7
        with pytest.raises(SnapshotError, match="_experimental_field"):
            machine.snapshot("entry", 0, 0, 0)

    def test_restore_delta_requires_base_cells(self, ctx):
        compiled, memory, golden, _ = ctx
        rec = record_golden_run(
            compiled, _turnpike(), memory, interval=16, golden_image=golden
        )
        machine = ResilientMachine(compiled, _turnpike(), memory.copy())
        with pytest.raises(SnapshotError, match="delta"):
            machine.restore(rec.snapshots[0])


class TestConvergence:
    def test_convergence_fires_and_identifies_golden_point(self, ctx):
        """Drive an injected machine by hand: the checker must raise
        ConvergedExit at a fingerprint the golden stream actually owns."""
        compiled, memory, golden, horizon = ctx
        config = _turnpike()
        rec = record_golden_run(
            compiled, config, memory, interval=16, golden_image=golden
        )
        raised = None
        for index in range(40):
            injection = injection_for_index(
                compiled, 10, 42, index, horizon, DEFAULT_TARGET_MIX
            )
            machine = ResilientMachine(compiled, config, memory.copy())
            prepare_accelerated_run(machine, rec, injection.time, memory)
            machine.arm_injection(injection)
            try:
                machine.run()
            except ConvergedExit as exc:
                raised = exc
                break
        assert raised is not None, "no injection converged in 40 tries"
        assert raised.golden_tick <= rec.total_ticks
        assert raised.golden_steps <= rec.total_steps
        assert rec.fp_index  # the match came out of this index

    def test_timeout_splice_matches_watchdog(self, ctx):
        """With a step budget squeezed between the injection point and
        the spliced total, accelerated and from-scratch runs must both
        classify TIMEOUT with identical error text."""
        compiled, memory, golden, horizon = ctx
        config = _turnpike()
        rec_full = record_golden_run(
            compiled, config, memory, interval=16, golden_image=golden
        )
        for index in range(60):
            injection = injection_for_index(
                compiled, 10, 42, index, horizon, DEFAULT_TARGET_MIX
            )
            for budget in (
                rec_full.total_steps - 1,
                rec_full.total_steps + 5,
                rec_full.total_steps + 50,
            ):
                ref = run_with_injection(
                    compiled, config, memory, injection, golden,
                    max_steps=budget,
                )
                acc = run_with_injection(
                    compiled, config, memory, injection, golden,
                    max_steps=budget, accel=rec_full,
                )
                assert outcome_to_dict(acc) == outcome_to_dict(ref)


class TestParity:
    """The headline guarantee, exhaustively: accelerated == from-scratch."""

    @pytest.mark.parametrize("variant", sorted(VARIANT_CONFIGS))
    def test_all_targets_all_variants(self, ctx, variant):
        compiled, memory, golden, horizon = ctx
        config = VARIANT_CONFIGS[variant](10)
        rec = record_golden_run(
            compiled, config, memory, interval=16, golden_image=golden
        )
        for index in range(35):  # covers every target in the 7-mix
            injection = injection_for_index(
                compiled, 10, 1234, index, horizon, DEFAULT_TARGET_MIX
            )
            ref = run_with_injection(
                compiled, config, memory, injection, golden
            )
            acc = run_with_injection(
                compiled, config, memory, injection, golden, accel=rec
            )
            assert outcome_to_dict(acc) == outcome_to_dict(ref), (
                f"accel diverged: variant={variant} index={index} "
                f"target={injection.target.value}"
            )

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        variant=st.sampled_from(sorted(VARIANT_CONFIGS)),
        interval=st.sampled_from([1, 3, 17, 64, 0, 10**9]),
        index=st.integers(min_value=0, max_value=400),
        wcdl=st.sampled_from([4, 10]),
    )
    def test_random_interval_and_injection(self, variant, interval, index, wcdl):
        """Hypothesis sweep over (variant, interval, injection, wcdl).

        ``interval=0`` disables snapshots (convergence-only), and an
        interval beyond the run length degenerates to the pure legacy
        path; both must still be byte-equal to from-scratch.
        """
        compiled = compile_program(build_sum_loop(), turnpike_config())
        memory = Memory()
        golden = golden_memory(compiled, memory)
        horizon = _horizon(compiled, memory)
        config = VARIANT_CONFIGS[variant](wcdl)
        rec = record_golden_run(
            compiled, config, memory, interval=interval, golden_image=golden
        )
        if interval >= 10**9:
            assert rec.snapshots == []  # degenerates to the old path
        injection = injection_for_index(
            compiled, wcdl, 99, index, horizon, DEFAULT_TARGET_MIX
        )
        ref = run_with_injection(compiled, config, memory, injection, golden)
        acc = run_with_injection(
            compiled, config, memory, injection, golden, accel=rec
        )
        assert outcome_to_dict(acc) == outcome_to_dict(ref)


class TestArtifactCache:
    def test_golden_record_round_trips(self, ctx, tmp_path):
        compiled, memory, golden, _ = ctx
        config = _turnpike()
        rec = record_golden_run(
            compiled, config, memory, interval=16, golden_image=golden
        )
        cache = ArtifactCache(tmp_path)
        key = ArtifactCache.golden_key("TEST.sum_loop", config, 16, 4_000_000)
        assert cache.load_golden(key) is None
        cache.store_golden(key, rec)
        loaded = cache.load_golden(key)
        assert isinstance(loaded, GoldenRecord)
        assert loaded.fp_index == rec.fp_index
        assert loaded.snap_times == rec.snap_times
        assert loaded.total_steps == rec.total_steps
        assert [s.mem_delta for s in loaded.snapshots] == [
            s.mem_delta for s in rec.snapshots
        ]
        info = cache.info()
        assert info["goldens"] == 1
        assert cache.clear() == 1

    def test_loaded_record_accelerates_identically(self, ctx, tmp_path):
        """A record served from disk (fresh process ≈ fresh unpickle) must
        drive the exact same outcomes as the in-memory one — this is what
        makes cross-process golden sharing sound."""
        compiled, memory, golden, horizon = ctx
        config = _turnpike()
        rec = record_golden_run(
            compiled, config, memory, interval=16, golden_image=golden
        )
        cache = ArtifactCache(tmp_path)
        key = ArtifactCache.golden_key("TEST.sum_loop", config, 16, 4_000_000)
        cache.store_golden(key, rec)
        loaded = cache.load_golden(key)
        for index in range(20):
            injection = injection_for_index(
                compiled, 10, 5, index, horizon, DEFAULT_TARGET_MIX
            )
            a = run_with_injection(
                compiled, config, memory, injection, golden, accel=rec
            )
            b = run_with_injection(
                compiled, config, memory, injection, golden, accel=loaded
            )
            assert outcome_to_dict(a) == outcome_to_dict(b)

    def test_golden_key_separates_configs(self):
        tp = _turnpike()
        ts = VARIANT_CONFIGS["turnstile"](10)
        k = ArtifactCache.golden_key
        assert k("A", tp, 256, 100) != k("B", tp, 256, 100)
        assert k("A", tp, 256, 100) != k("A", ts, 256, 100)
        assert k("A", tp, 256, 100) != k("A", tp, 128, 100)
        assert k("A", tp, 256, 100) != k("A", tp, 256, 200)
