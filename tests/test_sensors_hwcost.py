"""Tests for the acoustic sensor model (Figure 18) and the hardware cost
model (Table 1)."""

import math

import pytest

from repro.hwcost.cacti import (
    build_table1,
    cam_array,
    clq_cost,
    color_maps_cost,
    ram_array,
    store_buffer_cost,
)
from repro.sensors.acoustic import (
    SensorGrid,
    area_overhead_percent,
    detection_latency_cycles,
    figure18_series,
    sensors_for_wcdl,
)


class TestSensorModel:
    def test_paper_anchor_300_sensors_2500mhz(self):
        """300 sensors @ 2.5 GHz -> ~10 cycles (the paper's default)."""
        latency = detection_latency_cycles(300, 2.5)
        assert 8.0 <= latency <= 12.0

    def test_paper_anchor_30_sensors(self):
        """30 sensors -> ~30 cycles at 2.5 GHz."""
        latency = detection_latency_cycles(30, 2.5)
        assert 24.0 <= latency <= 34.0

    def test_latency_decreases_with_sensors(self):
        values = [detection_latency_cycles(n, 2.5) for n in (10, 30, 100, 300)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_latency_increases_with_clock(self):
        assert detection_latency_cycles(100, 3.0) > detection_latency_cycles(
            100, 2.0
        )

    def test_inverse_square_root_scaling(self):
        """Propagation distance scales with 1/sqrt(n): quadrupling the
        sensors halves the distance-borne latency."""
        overhead = detection_latency_cycles(10**9, 2.5)  # ~pure overhead
        l100 = detection_latency_cycles(100, 2.5) - overhead
        l400 = detection_latency_cycles(400, 2.5) - overhead
        assert l400 == pytest.approx(l100 / 2, rel=0.01)

    def test_sensors_for_wcdl_inverse(self):
        n = sensors_for_wcdl(10.0, 2.5)
        assert detection_latency_cycles(n, 2.5) <= 10.0
        if n > 1:
            assert detection_latency_cycles(n - 1, 2.5) > 10.0

    def test_figure18_series_structure(self):
        series = figure18_series()
        assert set(series) == {2.0, 2.5, 3.0}
        for clock, points in series.items():
            ns = [n for n, _ in points]
            assert ns == sorted(ns)

    def test_area_overhead_under_one_percent(self):
        """The paper: 300 sensors cost <~1% of die area."""
        assert area_overhead_percent(300) < 1.5

    def test_bigger_die_longer_latency(self):
        small = SensorGrid(100, die_area_mm2=1.0)
        big = SensorGrid(100, die_area_mm2=4.0)
        assert big.wcdl_cycles(2.5) > small.wcdl_cycles(2.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            SensorGrid(0)
        with pytest.raises(ValueError):
            SensorGrid(10, die_area_mm2=-1)
        with pytest.raises(ValueError):
            SensorGrid(10).wcdl_cycles(0)
        with pytest.raises(ValueError):
            sensors_for_wcdl(-1, 2.5)


class TestHardwareCost:
    """Table 1 anchors, reproduced by the calibrated CACTI-style model."""

    def test_sb4_area(self):
        assert store_buffer_cost(4).area_um2 == pytest.approx(621.28, rel=0.01)

    def test_sb4_energy(self):
        assert store_buffer_cost(4).dynamic_energy_pj == pytest.approx(
            0.43099, rel=0.01
        )

    def test_sb40_area(self):
        assert store_buffer_cost(40).area_um2 == pytest.approx(3132.50, rel=0.01)

    def test_sb40_energy(self):
        assert store_buffer_cost(40).dynamic_energy_pj == pytest.approx(
            2.11525, rel=0.01
        )

    def test_color_maps_cost(self):
        cost = color_maps_cost()
        assert cost.area_um2 == pytest.approx(36.651, rel=0.01)
        assert cost.dynamic_energy_pj == pytest.approx(0.02518, rel=0.01)

    def test_clq_cost(self):
        cost = clq_cost(2)
        assert cost.area_um2 == pytest.approx(24.434, rel=0.01)
        assert cost.dynamic_energy_pj == pytest.approx(0.01679, rel=0.01)

    def test_turnpike_total_about_ten_percent_of_sb(self):
        table = build_table1()
        area_ratio, energy_ratio = table.turnpike_vs_sb4
        assert area_ratio == pytest.approx(0.098, abs=0.01)
        assert energy_ratio == pytest.approx(0.097, abs=0.01)

    def test_sb40_about_5x_sb4(self):
        table = build_table1()
        area_ratio, energy_ratio = table.sb40_vs_sb4
        assert area_ratio == pytest.approx(5.04, rel=0.02)
        assert energy_ratio == pytest.approx(4.91, rel=0.03)

    def test_cam_scales_superlinearly_vs_ram(self):
        """CAM energy grows with the whole array (search); RAM energy
        stays near-constant per access."""
        cam_small = cam_array("s", 4, 64).dynamic_energy_pj
        cam_big = cam_array("b", 40, 64).dynamic_energy_pj
        ram_small = ram_array("s", 4, 64).dynamic_energy_pj
        ram_big = ram_array("b", 40, 64).dynamic_energy_pj
        assert cam_big / cam_small > 3.0
        # CAM scaling is much steeper than RAM scaling (full-array search
        # vs one-entry read + decoder growth).
        assert cam_big / cam_small > 2 * (ram_big / ram_small)

    def test_table_rows_complete(self):
        table = build_table1()
        names = [row.name for row in table.rows()]
        assert len(names) == 5
        assert any("4-entry SB" in n for n in names)
        assert any("40-entry SB" in n for n in names)
        assert any("total" in n for n in names)

    def test_area_monotone_in_entries(self):
        areas = [store_buffer_cost(n).area_um2 for n in (2, 4, 8, 16, 40)]
        assert all(a < b for a, b in zip(areas, areas[1:]))


class TestTable1ExactAnchors:
    """Regression pins: the calibrated model's Table 1 numbers, exact to
    the printed precision.  The ECC cost extension layers *on top of*
    these arrays — any drift here silently recalibrates every Pareto
    frontier, so these are equality pins, not tolerances."""

    def test_sb4_exact(self):
        cost = store_buffer_cost(4)
        assert round(cost.area_um2, 2) == 621.28
        assert round(cost.dynamic_energy_pj, 5) == 0.43099

    def test_sb40_exact(self):
        cost = store_buffer_cost(40)
        assert round(cost.area_um2, 2) == 3132.50
        assert round(cost.dynamic_energy_pj, 5) == 2.11525

    def test_sb40_vs_sb4_ratio_exact(self):
        area_ratio, energy_ratio = build_table1().sb40_vs_sb4
        assert round(area_ratio, 3) == 5.042
        assert round(energy_ratio, 4) == 4.9079

    def test_color_maps_exact(self):
        cost = color_maps_cost()
        assert round(cost.area_um2, 3) == 36.651
        assert round(cost.dynamic_energy_pj, 5) == 0.02517

    def test_clq_exact(self):
        cost = clq_cost(2)
        assert round(cost.area_um2, 3) == 24.434
        assert round(cost.dynamic_energy_pj, 5) == 0.01679
