"""Unit tests for the batch service: spec canonicalisation and dedup
keys, the fair scheduler's discipline, metrics, the crash-safe journal,
and the asyncio server driven end-to-end over real sockets with a stub
worker pool (no simulation work — these tests exercise queueing,
backpressure, dedup, retry/backoff, per-job timeout, cancellation,
re-adoption, and graceful drain, all in milliseconds)."""

from __future__ import annotations

import asyncio
import concurrent.futures
import contextlib
import json
import threading
import time
from concurrent.futures import BrokenExecutor

import pytest

from repro.service.jobs import JobRecord, JobSpec, JobState, job_key
from repro.service.journal import Journal
from repro.service.metrics import LatencyHistogram, ServiceMetrics
from repro.service.scheduler import FairScheduler, QueueFull
from repro.service.server import JobService, ServiceConfig

UID = "CPU2006.gcc"
UID2 = "SPLASH3.radix"


def _job(client="a", priority=10, uid=UID, seed=None):
    spec = JobSpec.create(
        "inject", {"uid": uid, "seed": seed} if seed is not None else {"uid": uid}
    )
    _job.counter = getattr(_job, "counter", 0) + 1
    return JobRecord(
        id=f"j{_job.counter:06d}",
        spec=spec,
        key=f"key{_job.counter}",
        client=client,
        priority=priority,
    )


class TestJobSpec:
    def test_defaults_and_spelling_dedupe(self):
        bare = JobSpec.create("run", {"uid": UID})
        spelled = JobSpec.create(
            "run", {"uid": UID, "wcdl": 10, "sb": 4, "scheme": "turnpike",
                    "backend": "fast"}
        )
        assert bare == spelled
        assert job_key(bare) == job_key(spelled)

    def test_different_specs_different_keys(self):
        a = JobSpec.create("run", {"uid": UID})
        b = JobSpec.create("run", {"uid": UID, "wcdl": 20})
        c = JobSpec.create("lint", {"uid": UID})
        assert len({job_key(a), job_key(b), job_key(c)}) == 3

    def test_key_embeds_code_digest(self, monkeypatch):
        spec = JobSpec.create("run", {"uid": UID})
        before = job_key(spec)
        monkeypatch.setattr(
            "repro.service.jobs.code_digest", lambda: "different"
        )
        assert job_key(spec) != before

    def test_unknown_kind_and_params_rejected(self):
        with pytest.raises(ValueError, match="unknown job kind"):
            JobSpec.create("frobnicate", {})
        with pytest.raises(ValueError, match="unknown run parameter"):
            JobSpec.create("run", {"uid": UID, "bogus": 1})
        with pytest.raises(ValueError, match="required"):
            JobSpec.create("run", {})
        with pytest.raises(ValueError, match="unknown benchmark uid"):
            JobSpec.create("run", {"uid": "NOPE.nope"})
        with pytest.raises(ValueError, match="expected an integer"):
            JobSpec.create("run", {"uid": UID, "wcdl": "ten"})

    def test_lint_uid_xor_all(self):
        with pytest.raises(ValueError, match="uid or all"):
            JobSpec.create("lint", {})
        with pytest.raises(ValueError, match="not both"):
            JobSpec.create("lint", {"uid": UID, "all": True})
        JobSpec.create("lint", {"all": True})  # ok

    def test_argv_round_trips_through_cli_parser(self):
        """Every canonical argv must parse under the real CLI parser."""
        from repro.__main__ import build_parser

        parser = build_parser()
        for spec in (
            JobSpec.create("run", {"uid": UID}),
            JobSpec.create("inject", {"uid": UID2, "count": 3}),
            JobSpec.create("lint", {"all": True, "strict": True}),
            JobSpec.create("lint", {"uid": UID, "differential": False}),
        ):
            args = parser.parse_args(spec.to_argv())
            assert args.command == spec.kind

    def test_record_round_trip(self):
        job = _job()
        job.state = JobState.DONE
        job.exit_code = 0
        clone = JobRecord.from_dict(json.loads(json.dumps(job.to_dict())))
        assert clone.to_dict() == job.to_dict()


class TestFairScheduler:
    def test_priority_order(self):
        sched = FairScheduler()
        low = _job(priority=20)
        high = _job(priority=1)
        mid = _job(priority=10)
        for job in (low, mid, high):
            sched.push(job)
        assert [sched.pop() for _ in range(3)] == [high, mid, low]
        assert sched.pop() is None

    def test_round_robin_across_clients(self):
        sched = FairScheduler()
        heavy = [_job(client="heavy") for _ in range(4)]
        light = [_job(client="light") for _ in range(2)]
        for job in heavy[:4]:
            sched.push(job)
        for job in light:
            sched.push(job)
        order = [sched.pop().client for _ in range(6)]
        # light's two jobs are interleaved, not stuck behind heavy's four
        assert order == ["heavy", "light", "heavy", "light", "heavy", "heavy"]

    def test_fifo_within_client(self):
        sched = FairScheduler()
        jobs = [_job(client="a") for _ in range(3)]
        for job in jobs:
            sched.push(job)
        assert [sched.pop() for _ in range(3)] == jobs

    def test_backpressure(self):
        sched = FairScheduler(limit=2)
        sched.push(_job())
        sched.push(_job())
        with pytest.raises(QueueFull):
            sched.push(_job())
        assert sched.depth == 2

    def test_cancelled_jobs_skipped(self):
        sched = FairScheduler()
        first, second = _job(client="a"), _job(client="a")
        sched.push(first)
        sched.push(second)
        first.state = JobState.CANCELLED
        sched.discard(first)
        assert sched.depth == 1
        assert sched.pop() is second
        assert sched.pop() is None
        assert sched.depth == 0


class TestMetrics:
    def test_histogram_buckets(self):
        hist = LatencyHistogram()
        for value in (0.005, 0.2, 0.2, 100.0, 1e9):
            hist.observe(value)
        data = hist.to_dict()
        assert data["count"] == 5
        assert data["buckets"]["le_0.01s"] == 1
        assert data["buckets"]["le_0.25s"] == 2
        assert data["buckets"]["le_300s"] == 1
        assert data["buckets"]["le_inf"] == 1

    def test_snapshot_shape_and_dedup_ratio(self):
        metrics = ServiceMetrics()
        metrics.inc("submitted", 4)
        metrics.inc("deduped_cached", 1)
        metrics.inc("deduped_in_flight", 1)
        metrics.observe_exec("run", 0.1)
        snap = metrics.snapshot(queue_depth=3, in_flight=1, workers=2)
        assert snap["queue_depth"] == 3
        assert snap["dedup"] == {"hits": 2, "hit_ratio": 0.5}
        assert snap["latency"]["exec"]["run"]["count"] == 1
        # deterministic key order for diffable output
        assert json.dumps(snap, sort_keys=True)


class TestJournal:
    def test_replay_round_trip(self, tmp_path):
        journal = Journal(tmp_path)
        job = _job()
        journal.record_submit(job)
        job.state = JobState.RUNNING
        job.attempts = 1
        journal.record_state(job)
        replayed = journal.replay()
        assert set(replayed) == {job.id}
        assert replayed[job.id].state is JobState.RUNNING
        assert replayed[job.id].attempts == 1
        assert replayed[job.id].spec == job.spec

    def test_torn_final_line_tolerated(self, tmp_path):
        journal = Journal(tmp_path)
        job = _job()
        journal.record_submit(job)
        journal.close()
        with open(journal.log_path, "a") as fh:
            fh.write('{"ev": "state", "id": "' + job.id + '", "sta')  # torn
        replayed = journal.replay()
        assert set(replayed) == {job.id}
        assert replayed[job.id].state is JobState.QUEUED

    def test_compact_rewrites_to_one_line_per_job(self, tmp_path):
        journal = Journal(tmp_path)
        jobs = {}
        for _ in range(2):
            job = _job()
            jobs[job.id] = job
            journal.record_submit(job)
            job.state = JobState.DONE
            journal.record_state(job)
        journal.compact(jobs)
        lines = journal.log_path.read_text().splitlines()
        assert len(lines) == 2
        assert journal.replay()[job.id].state is JobState.DONE

    def test_result_store_round_trip(self, tmp_path):
        journal = Journal(tmp_path)
        assert journal.load_result("abc") is None
        journal.store_result("abc", {"exit_code": 0, "stdout": "hi"})
        assert journal.load_result("abc")["stdout"] == "hi"

    def test_endpoint_file(self, tmp_path):
        journal = Journal(tmp_path)
        assert journal.read_endpoint() is None
        journal.write_endpoint("127.0.0.1", 4321)
        assert journal.read_endpoint() == ("127.0.0.1", 4321)
        journal.clear_endpoint()
        assert journal.read_endpoint() is None


# -- asyncio server with a stub pool ----------------------------------------


class StubPool:
    """WorkerPool lookalike: instant (or delayed) canned results."""

    def __init__(self, workers=2, delay=0.0, fail_first=0):
        self.workers = workers
        self.delay = delay
        self.fail_first = fail_first
        self.restarts = 0
        self.executed: list[list[str]] = []
        self.lock = threading.Lock()

    def submit(self, argv):
        fut: concurrent.futures.Future = concurrent.futures.Future()
        with self.lock:
            if self.fail_first > 0:
                self.fail_first -= 1
                fut.set_exception(BrokenExecutor("worker died (stub)"))
                return fut

        def work():
            time.sleep(self.delay)
            with self.lock:
                self.executed.append(argv)
            if not fut.cancelled():
                fut.set_result(
                    {
                        "exit_code": 0,
                        "stdout": f"ran {' '.join(argv)}\n",
                        "stderr": "",
                    }
                )

        threading.Thread(target=work, daemon=True).start()
        return fut

    def restart(self):
        self.restarts += 1

    def shutdown(self, wait=True):
        pass


@contextlib.asynccontextmanager
async def running_service(tmp_path, pool=None, **overrides):
    config = ServiceConfig(
        journal_dir=tmp_path / "journal",
        install_signal_handlers=False,
        pool_factory=lambda workers: pool or StubPool(workers),
        retry_base=0.01,
        **overrides,
    )
    service = JobService(config)
    await service.start()
    try:
        yield service
    finally:
        service.begin_drain()
        with contextlib.suppress(asyncio.TimeoutError):
            await asyncio.wait_for(service._stopped.wait(), 5.0)
        await service._shutdown()


async def http(service, method, path, payload=None):
    host, port = service.address
    reader, writer = await asyncio.open_connection(host, port)
    body = json.dumps(payload).encode() if payload is not None else b""
    writer.write(
        (
            f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        ).encode()
        + body
    )
    await writer.drain()
    raw = await reader.read(-1)
    writer.close()
    head, _, data = raw.partition(b"\r\n\r\n")
    return int(head.split()[1]), json.loads(data or b"{}")


async def wait_state(service, job_id, *states, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if service.jobs[job_id].state.value in states:
            return service.jobs[job_id]
        await asyncio.sleep(0.01)
    raise AssertionError(
        f"job {job_id} stuck in {service.jobs[job_id].state}"
    )


RUN_SPEC = {"kind": "run", "spec": {"uid": UID}, "client": "t"}


class TestServiceEndToEnd:
    def test_submit_execute_result_and_dedup(self, tmp_path):
        async def scenario():
            pool = StubPool()
            async with running_service(tmp_path, pool=pool) as service:
                status, health = await http(service, "GET", "/healthz")
                assert status == 200 and health["status"] == "ok"
                assert health["protocol"] == 1

                status, reply = await http(service, "POST", "/jobs", RUN_SPEC)
                assert status == 201 and reply["deduped"] is False
                jid = reply["job"]["id"]

                # identical submission from another client: same job
                other = dict(RUN_SPEC, client="other")
                status, reply2 = await http(service, "POST", "/jobs", other)
                assert status == 200 and reply2["deduped"] is True
                assert reply2["job"]["id"] == jid

                await wait_state(service, jid, "done")
                status, payload = await http(
                    service, "GET", f"/jobs/{jid}/result"
                )
                assert status == 200
                assert payload["result"]["exit_code"] == 0
                assert payload["result"]["stdout"].startswith("ran run")

                # the work executed exactly once
                assert len(pool.executed) == 1

                # a fresh identical submission is a cached dedup hit
                status, reply3 = await http(service, "POST", "/jobs", RUN_SPEC)
                assert status == 200 and reply3["deduped"] is True
                assert len(pool.executed) == 1

                status, metrics = await http(service, "GET", "/metrics")
                assert metrics["jobs"]["submitted"] == 3
                assert metrics["jobs"]["completed"] == 1
                assert metrics["dedup"]["hits"] == 2

        asyncio.run(scenario())

    def test_bad_submissions(self, tmp_path):
        async def scenario():
            async with running_service(tmp_path) as service:
                status, reply = await http(
                    service, "POST", "/jobs", {"kind": "nope", "spec": {}}
                )
                assert status == 400 and "unknown job kind" in reply["error"]
                status, reply = await http(
                    service,
                    "POST",
                    "/jobs",
                    {"kind": "run", "spec": {"uid": "NOPE"}},
                )
                assert status == 400
                status, _ = await http(service, "GET", "/jobs/zzz")
                assert status == 404
                status, _ = await http(service, "GET", "/nothing")
                assert status == 404

        asyncio.run(scenario())

    def test_backpressure_429(self, tmp_path):
        async def scenario():
            pool = StubPool(delay=5.0)
            async with running_service(
                tmp_path, pool=pool, workers=1, queue_limit=1
            ) as service:
                seen = set()
                for seed in (1, 2, 3):
                    payload = {
                        "kind": "inject",
                        "spec": {"uid": UID2, "seed": seed},
                        "client": "t",
                    }
                    status, reply = await http(service, "POST", "/jobs", payload)
                    seen.add(status)
                    # give the dispatcher a tick so job 1 leaves the queue
                    await asyncio.sleep(0.05)
                # first accepted+running, second queued, third rejected
                assert seen == {201, 429}
                status, metrics = await http(service, "GET", "/metrics")
                assert metrics["jobs"]["rejected_backpressure"] == 1
                # drain must not hang on the still-sleeping stub thread:
                # cancel the queued job and time out the running one
                for job in list(service.jobs.values()):
                    service.cancel(job)
                for job in list(service.jobs.values()):
                    if not job.state.terminal:
                        job.timeout = 0.01

        asyncio.run(scenario())

    def test_per_job_timeout(self, tmp_path):
        async def scenario():
            pool = StubPool(delay=5.0)
            async with running_service(tmp_path, pool=pool, workers=1) as service:
                payload = dict(RUN_SPEC, timeout=0.05)
                status, reply = await http(service, "POST", "/jobs", payload)
                assert status == 201
                jid = reply["job"]["id"]
                job = await wait_state(service, jid, "timeout")
                assert "timeout" in job.error
                assert pool.restarts == 1
                status, payload = await http(
                    service, "GET", f"/jobs/{jid}/result"
                )
                assert status == 200
                assert payload["result"]["state"] == "timeout"
                # a timed-out job is not cached: resubmission re-queues
                status, reply = await http(service, "POST", "/jobs", RUN_SPEC)
                assert status == 201 and reply["deduped"] is False

        asyncio.run(scenario())

    def test_retry_with_backoff_after_worker_death(self, tmp_path):
        async def scenario():
            pool = StubPool(fail_first=2)
            async with running_service(
                tmp_path, pool=pool, max_retries=2
            ) as service:
                job, deduped = service.submit("run", {"uid": UID}, client="t")
                done = await wait_state(service, job.id, "done")
                assert done.attempts == 3
                status, metrics = await http(service, "GET", "/metrics")
                assert metrics["jobs"]["retries"] == 2
                assert metrics["jobs"]["completed"] == 1

        asyncio.run(scenario())

    def test_retries_exhausted_fails(self, tmp_path):
        async def scenario():
            pool = StubPool(fail_first=99)
            async with running_service(
                tmp_path, pool=pool, max_retries=1
            ) as service:
                job, _ = service.submit("run", {"uid": UID}, client="t")
                failed = await wait_state(service, job.id, "failed")
                assert "worker died" in failed.error
                # failures are not cached: resubmitting re-executes
                pool.fail_first = 0
                job2, deduped = service.submit("run", {"uid": UID}, client="t")
                assert not deduped and job2.id != job.id
                await wait_state(service, job2.id, "done")

        asyncio.run(scenario())

    def test_cancel_queued_job(self, tmp_path):
        async def scenario():
            pool = StubPool(delay=0.3)
            async with running_service(tmp_path, pool=pool, workers=1) as service:
                first, _ = service.submit("run", {"uid": UID}, client="t")
                second, _ = service.submit("run", {"uid": UID2}, client="t")
                await asyncio.sleep(0.05)  # first starts, second queued
                status, reply = await http(
                    service, "POST", f"/jobs/{second.id}/cancel"
                )
                assert status == 200
                assert service.jobs[second.id].state is JobState.CANCELLED
                # running jobs refuse to cancel
                status, _ = await http(
                    service, "POST", f"/jobs/{first.id}/cancel"
                )
                assert status == 409
                await wait_state(service, first.id, "done")

        asyncio.run(scenario())

    def test_graceful_drain_finishes_queue(self, tmp_path):
        async def scenario():
            pool = StubPool(delay=0.05)
            config_jobs = []
            async with running_service(tmp_path, pool=pool, workers=1) as service:
                for uid in (UID, UID2):
                    job, _ = service.submit("run", {"uid": uid}, client="t")
                    config_jobs.append(job.id)
                service.begin_drain()
                # draining refuses new work with 503
                status, _ = await http(service, "POST", "/jobs", RUN_SPEC)
                assert status == 503
                await asyncio.wait_for(service._stopped.wait(), 5.0)
                for jid in config_jobs:
                    assert service.jobs[jid].state is JobState.DONE
            # after shutdown: journal compacted, endpoint file removed
            journal = Journal(tmp_path / "journal")
            assert journal.read_endpoint() is None
            replayed = journal.replay()
            assert {j.state for j in replayed.values()} == {JobState.DONE}

        asyncio.run(scenario())

    def test_crash_readoption_requeues_interrupted_jobs(self, tmp_path):
        async def scenario():
            # First server "crashes" mid-job: simulate by journaling a
            # submit + running state and never finishing.
            journal = Journal(tmp_path / "journal")
            spec = JobSpec.create("run", {"uid": UID})
            crashed = JobRecord(
                id="j000007", spec=spec, key=job_key(spec), client="t"
            )
            journal.record_submit(crashed)
            crashed.state = JobState.RUNNING
            crashed.attempts = 1
            journal.record_state(crashed)
            journal.close()

            pool = StubPool()
            async with running_service(tmp_path, pool=pool) as service:
                assert "j000007" in service.jobs
                job = await wait_state(service, "j000007", "done")
                assert job.exit_code == 0
                # new ids continue after the re-adopted one
                newer, _ = service.submit("run", {"uid": UID2}, client="t")
                assert int(newer.id[1:]) > 7
                status, metrics = await http(service, "GET", "/metrics")
                assert metrics["jobs"]["readopted"] == 1

        asyncio.run(scenario())

    def test_done_jobs_dedupe_across_restart(self, tmp_path):
        async def scenario():
            pool = StubPool()
            async with running_service(tmp_path, pool=pool) as service:
                job, _ = service.submit("run", {"uid": UID}, client="t")
                await wait_state(service, job.id, "done")
                first_id = job.id
            # second server, same journal: the result is served from
            # the store without executing anything
            pool2 = StubPool()
            async with running_service(tmp_path, pool=pool2) as service:
                job2, deduped = service.submit("run", {"uid": UID}, client="x")
                assert deduped and job2.id == first_id
                assert job2.state is JobState.DONE
                assert pool2.executed == []

        asyncio.run(scenario())
