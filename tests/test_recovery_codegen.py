"""Recovery-block code generation tests (Figure 9 fidelity).

The generated recovery blocks must (a) cover every region live-in,
(b) order recomputation steps after their operand loads, and (c) agree
with the resilient machine's binding-resolution semantics whenever the
live bindings match the statically anticipated variant.
"""

import pytest

from repro.compiler.config import turnpike_config, turnstile_config
from repro.compiler.pipeline import compile_program
from repro.compiler.pruning import PRUNED_ANNOTATION
from repro.compiler.recovery_codegen import (
    RecoveryCodegenError,
    evaluate_recovery_block,
    generate_recovery_blocks,
    storage_address,
)
from repro.isa.builder import ProgramBuilder
from repro.isa.registers import Reg
from repro.workloads.suites import load_workload


@pytest.fixture(scope="module")
def gcc_blocks():
    wl = load_workload("CPU2006.gcc")
    compiled = compile_program(wl.program, turnpike_config())
    return compiled, generate_recovery_blocks(compiled)


class TestGeneration:
    def test_block_per_region(self, gcc_blocks):
        compiled, blocks = gcc_blocks
        assert set(blocks) == set(compiled.recovery.entries)

    def test_every_live_in_covered(self, gcc_blocks):
        compiled, blocks = gcc_blocks
        for region_id, entry in compiled.recovery.entries.items():
            targets = {step.target for step in blocks[region_id].steps}
            for reg in entry.live_in:
                assert reg in targets, f"R{region_id} misses {reg.name}"

    def test_operands_defined_before_use(self, gcc_blocks):
        _, blocks = gcc_blocks
        for block in blocks.values():
            defined: set[Reg] = set()
            for step in block.steps:
                for operand in step.operands:
                    assert operand in defined, block.render()
                defined.add(step.target)

    def test_resume_points_match_recovery_map(self, gcc_blocks):
        compiled, blocks = gcc_blocks
        for region_id, entry in compiled.recovery.entries.items():
            block = blocks[region_id]
            assert block.resume_block == entry.block
            assert block.resume_index == entry.index + 1

    def test_pruned_registers_recomputed_not_loaded(self):
        b = ProgramBuilder("cg")
        b.begin_block("entry")
        base = b.li(0x100)
        x = b.li(10)
        y = b.addi(x, 4)
        b.store(x, base)
        b.store(y, base, offset=4)
        b.store(x, base, offset=8)
        b.ret()
        compiled = compile_program(b.finish(), turnpike_config())
        blocks = generate_recovery_blocks(compiled)
        # Find a region where y (post-allocation) is a live-in with a
        # pruned definition: its step must be an op/const, not a load.
        pruned_dests = {
            i.dest
            for i in compiled.program.instructions()
            if PRUNED_ANNOTATION in i.annotations
        }
        recomputed = set()
        for block in blocks.values():
            for step in block.steps:
                if step.kind in ("const", "op"):
                    recomputed.add(step.target)
        assert pruned_dests & recomputed or not pruned_dests

    def test_render_readable(self, gcc_blocks):
        _, blocks = gcc_blocks
        text = next(iter(blocks.values())).render()
        assert "recovery block" in text and "jmp" in text

    def test_turnstile_blocks_are_pure_loads(self):
        wl = load_workload("CPU2006.gcc")
        compiled = compile_program(wl.program, turnstile_config())
        blocks = generate_recovery_blocks(compiled)
        for block in blocks.values():
            assert all(step.kind == "load" for step in block.steps)

    def test_baseline_program_rejected(self, gcc_workload, gcc_baseline):
        with pytest.raises(ValueError):
            generate_recovery_blocks(gcc_baseline)


class TestEvaluationEquivalence:
    def test_matches_machine_restoration(self):
        """Drive the resilient machine to a recovery and compare its
        restored registers against the generated block's evaluation."""
        from repro.faults.campaign import turnpike_machine_config
        from repro.runtime.machine import Injection, InjectionTarget, ResilientMachine

        wl = load_workload("CPU2006.bzip2")
        compiled = compile_program(wl.program, turnpike_config())
        blocks = generate_recovery_blocks(compiled)

        machine = ResilientMachine(
            compiled, turnpike_machine_config(10), wl.fresh_memory()
        )
        machine.arm_injection(
            Injection(
                time=5000,
                target=InjectionTarget.REGISTER,
                reg=Reg.phys(4),
                bit=9,
                detection_delay=8,
            )
        )

        restored = {}

        original = machine._do_recovery

        def spying_recovery():
            result = original()
            target_region = machine.rbb.current.region_id
            entry = compiled.recovery.entry(target_region)
            restored["region"] = target_region
            restored["regs"] = {
                reg: machine.regs[reg] for reg in entry.live_in
            }
            restored["bindings"] = dict(machine.vc_bindings)
            return result

        machine._do_recovery = spying_recovery
        machine.run()
        assert restored, "injection did not trigger a recovery"

        block = blocks[restored["region"]]
        env = evaluate_recovery_block(block, restored["bindings"])
        for reg, machine_value in restored["regs"].items():
            # The static block anticipates the pruned variant; accept
            # either an exact match or, when a different definition
            # variant was live, the binding-resolved value (which the
            # load steps produce by construction).
            assert reg in env
            binding = restored["bindings"].get(reg.index)
            if binding is not None and binding[0] == "value":
                if any(
                    s.kind == "load" and s.target == reg for s in block.steps
                ):
                    assert env[reg] == machine_value

    def test_missing_binding_raises(self, gcc_blocks):
        _, blocks = gcc_blocks
        # Pick a block containing a load step: constants/ops evaluate
        # without consulting bindings, loads must fail on an empty map.
        block = next(
            b
            for b in blocks.values()
            if any(s.kind == "load" for s in b.steps)
        )
        with pytest.raises(RecoveryCodegenError):
            evaluate_recovery_block(block, {})


class TestStorageLayout:
    def test_addresses_disjoint_per_register(self):
        seen = set()
        for reg_idx in range(32):
            for slot in range(5):
                addr = storage_address(Reg.phys(reg_idx), slot)
                assert addr not in seen
                seen.add(addr)

    def test_addresses_outside_data_and_stack(self):
        from repro.runtime.memory import DATA_LIMIT, STACK_LIMIT

        lowest = storage_address(Reg.phys(0), 0)
        assert lowest >= DATA_LIMIT and lowest >= STACK_LIMIT
