"""Small program builders shared across test modules."""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program


def build_sum_loop(trip: int = 20, store_base: int = 0x400) -> Program:
    """A tiny canonical loop: sum i over [0, trip), store partials.

    Has a basic IV, a live-out accumulator, and one store per iteration.
    """
    b = ProgramBuilder("sum_loop")
    b.begin_block("entry")
    i = b.li(0)
    acc = b.li(0)
    limit = b.li(trip)
    base = b.li(store_base)
    b.jmp("loop")
    b.begin_block("loop")
    acc = b.add(acc, i, dest=acc)
    off = b.shli(i, 2)
    addr = b.add(base, off)
    b.store(acc, addr)
    b.addi(i, 1, dest=i)
    b.blt(i, limit, "loop", "done")
    b.begin_block("done")
    b.store(acc, base, offset=4 * trip)
    b.ret()
    return b.finish()


def build_diamond(store_base: int = 0x800) -> Program:
    """Branchy diamond: conditional definitions joining at one block."""
    b = ProgramBuilder("diamond")
    b.begin_block("entry")
    x = b.live_in()
    zero = b.li(0)
    base = b.li(store_base)
    b.blt(x, zero, "neg", "pos")
    b.begin_block("neg")
    y = b.sub(zero, x)
    b.store(y, base)
    b.jmp("join")
    b.begin_block("pos")
    y2 = b.addi(x, 5)
    b.store(y2, base, offset=4)
    b.jmp("join")
    b.begin_block("join")
    z = b.li(99)
    b.store(z, base, offset=8)
    b.ret()
    return b.finish()
