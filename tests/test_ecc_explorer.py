"""Upset patterns, codeword layouts, Pareto explorer, and the ecc CLI."""

from __future__ import annotations

import json
import random

import pytest

from repro.__main__ import main
from repro.ecc.explorer import (
    EccPoint,
    evaluate_pattern,
    explore,
    format_points,
    pareto_frontier,
    points_to_json,
    prune_dominated,
)
from repro.ecc.faultmodel import pattern, parse_patterns
from repro.ecc.layout import (
    STRUCTURES,
    chunk_widths,
    layout,
)
from repro.ecc.codes import Verdict
from repro.hwcost.ecc import layout_cost


class TestPatterns:
    def test_single_enumerates_every_cell(self):
        assert pattern("single").instances(8) == [1 << i for i in range(8)]

    def test_adjacent_double_spans_neighbours(self):
        masks = pattern("adjacent-double").instances(8)
        assert masks == [0b11 << i for i in range(7)]

    def test_burst3_flips_both_ends(self):
        masks = pattern("burst3").instances(8)
        # 3-cell window, 2 interior choices, 6 positions over 8 cells.
        assert len(masks) == 12
        for mask in masks:
            bits = [i for i in range(8) if (mask >> i) & 1]
            assert bits[-1] - bits[0] == 2  # both ends of the window

    def test_column8_is_stride_8_pair(self):
        masks = pattern("column8").instances(16)
        assert masks == [(1 | (1 << 8)) << i for i in range(8)]

    def test_random_patterns_sample_only(self):
        upset = pattern("random3")
        assert upset.instances(32) is None
        rng_a, rng_b = random.Random(5), random.Random(5)
        draws_a = [upset.sample(rng_a, 32) for _ in range(20)]
        draws_b = [upset.sample(rng_b, 32) for _ in range(20)]
        assert draws_a == draws_b
        assert all(bin(m).count("1") == 3 for m in draws_a)

    def test_parse_patterns_dedups_in_order(self):
        parsed = parse_patterns("single,burst3,single,adjacent-double")
        assert [p.name for p in parsed] == [
            "single", "burst3", "adjacent-double"
        ]

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ValueError, match="unknown upset pattern"):
            pattern("burst99")
        with pytest.raises(ValueError, match="empty pattern list"):
            parse_patterns(" , ")


class TestLayouts:
    def test_sb_entry_splits_into_64_plus_56(self):
        assert chunk_widths(120) == (64, 56)
        lay = layout("secded", "sb")
        assert tuple(code.k for code in lay.codes) == (64, 56)
        assert lay.total_bits == sum(code.n for code in lay.codes)

    def test_checkpoint_is_single_chunk(self):
        lay = layout("secded", "checkpoint")
        assert len(lay.codes) == 1
        assert lay.codes[0].k == 32

    def test_split_round_trips_every_cell(self):
        lay = layout("secded", "sb")
        for cell in range(lay.total_bits):
            per_code = lay.split(1 << cell)
            assert sum(bin(e).count("1") for e in per_code) == 1

    def test_split_rejects_out_of_range_cells(self):
        lay = layout("parity", "clq")
        with pytest.raises(ValueError, match="wider than the layout"):
            lay.split(1 << lay.total_bits)

    def test_interleave_splits_adjacent_doubles(self):
        """Round-robin interleaving turns one adjacent double into two
        single-bit errors in different codewords — so even plain SEC
        survives the strike."""
        plain = layout("sec", "sb", False)
        inter = layout("sec", "sb", True)
        rng = random.Random(0)
        double = 0b11  # cells 0 and 1
        split = inter.split(double)
        assert sum(e != 0 for e in split) == 2
        assert inter.word_verdict(rng, double) is Verdict.CORRECTED
        # The non-interleaved layout sees a true double in one codeword.
        assert sum(e != 0 for e in plain.split(double)) == 1

    def test_word_verdict_detection_contains_siblings(self):
        lay = layout("secded", "sb")
        rng = random.Random(1)
        # A double inside one codeword: detected, whatever the other
        # codeword decodes.
        assert lay.word_verdict(rng, 0b11) is Verdict.DETECTED

    def test_unknown_structure_rejected(self):
        with pytest.raises(ValueError, match="unknown structure"):
            layout("parity", "rob")


class TestCosting:
    def test_protected_array_costs_more_than_base(self):
        for structure in STRUCTURES:
            for code in ("parity", "secded", "bch"):
                cost = layout_cost(layout(code, structure))
                assert cost.area_um2 > cost.base.area_um2
                assert cost.energy_pj > cost.base.dynamic_energy_pj
                assert cost.area_overhead > 0
                assert cost.energy_overhead > 0

    def test_stronger_codes_cost_more(self):
        parity = layout_cost(layout("parity", "sb"))
        secded = layout_cost(layout("secded", "sb"))
        bch = layout_cost(layout("bch", "sb"))
        assert parity.area_um2 < secded.area_um2 < bch.area_um2
        assert parity.check_bits < secded.check_bits < bch.check_bits

    def test_interleave_is_cost_neutral(self):
        assert (
            layout_cost(layout("secded", "sb", False)).area_um2
            == layout_cost(layout("secded", "sb", True)).area_um2
        )


class TestExplorer:
    def test_exhaustive_when_enumerable(self):
        lay = layout("secded", "checkpoint")
        dist = evaluate_pattern(lay, pattern("single"), seed=0, trials=50)
        assert dist.exhaustive
        assert dist.trials == lay.total_bits
        assert dist.rate(Verdict.CORRECTED) == 1.0

    def test_sampling_is_deterministic(self):
        lay = layout("secded", "sb")
        a = evaluate_pattern(lay, pattern("random3"), seed=3, trials=100)
        b = evaluate_pattern(lay, pattern("random3"), seed=3, trials=100)
        assert a == b
        assert not a.exhaustive

    def test_explore_orders_points_deterministically(self):
        patterns = parse_patterns("single,adjacent-double")
        points = explore(
            ("parity", "secded"), ("clq", "checkpoint"), patterns,
            trials=100,
        )
        assert [p.name for p in points] == [
            "clq/parity", "clq/secded", "checkpoint/parity",
            "checkpoint/secded",
        ]

    def test_pareto_frontier_spans_structures(self):
        """Acceptance anchor: >= 3 non-dominated points over >= 2
        structures from the stock lattice."""
        patterns = parse_patterns("single,adjacent-double,burst3")
        points = explore(
            ("parity", "sec", "secded", "secdaec"),
            ("sb", "clq", "checkpoint"),
            patterns,
            trials=300,
        )
        frontier = pareto_frontier(points)
        assert len(frontier) >= 3
        assert len({p.structure for p in frontier}) >= 2
        # The honest negative: plain SEC is dominated everywhere (lower
        # coverage than secded at comparable cost, higher cost than
        # parity at comparable coverage).
        assert all(p.code != "sec" for p in frontier)

    def test_prune_dominated_keeps_input_order(self):
        patterns = parse_patterns("single")
        points = explore(
            ("parity", "sec", "secded"), ("clq",), patterns, trials=50
        )
        pruned = prune_dominated(points)
        names = [p.name for p in points if p in pruned]
        assert [p.name for p in pruned] == names

    def test_dominates_requires_strict_improvement(self):
        patterns = parse_patterns("single")
        (point,) = explore(("secded",), ("clq",), patterns, trials=50)
        assert not point.dominates(point)

    def test_json_payload_shape(self):
        patterns = parse_patterns("single")
        points = explore(("parity",), ("clq",), patterns, trials=50)
        payload = json.loads(points_to_json(points, pareto_frontier(points)))
        assert payload["pareto"] == ["clq/parity"]
        (entry,) = payload["points"]
        assert entry["point"] == "clq/parity"
        assert 0.0 <= entry["coverage"] <= 1.0
        assert entry["patterns"]["single"]["exhaustive"] is True

    def test_format_points_marks_frontier(self):
        patterns = parse_patterns("single")
        points = explore(("parity", "sec"), ("clq",), patterns, trials=50)
        text = format_points(points, pareto_frontier(points))
        assert "*clq/parity" in text
        assert "pareto frontier" in text


class TestEccCli:
    def test_text_with_pareto(self, capsys):
        code = main(
            [
                "ecc", "--codes", "parity,secded", "--structure", "clq",
                "--patterns", "single", "--trials", "100", "--pareto",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "clq/parity" in out
        assert "pareto frontier" in out

    def test_json_output_parses(self, capsys):
        code = main(
            [
                "ecc", "--codes", "secded", "--structure", "checkpoint",
                "--patterns", "single,adjacent-double", "--trials", "100",
                "--pareto", "--format", "json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["pareto"] == ["checkpoint/secded"]

    def test_unknown_code_is_usage_error(self, capsys):
        assert main(["ecc", "--codes", "golay"]) == 2
        assert "unknown code" in capsys.readouterr().err

    def test_unknown_structure_is_usage_error(self, capsys):
        assert main(["ecc", "--structure", "rob"]) == 2
        assert "unknown structure" in capsys.readouterr().err
