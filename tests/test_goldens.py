"""Golden-trace regression fixtures.

For six representative benchmarks (the quick subset) this test pins a
compact :class:`~repro.runtime.trace.TraceSummary` snapshot — dynamic
instruction mix, store disposition, region count, step total — for both
the baseline and the Turnpike build, plus the codegen backend's
superblock formation for the Turnpike build: the exact fused chains
(as exit-id sequences), the bail count and the superblock dispatch
count of a post-warmup run. Any compiler, interpreter or superblock-
formation change that shifts dynamic behaviour shows up as a readable
JSON diff here instead of as a silent drift in the figure sweeps.

To regenerate after an *intentional* change::

    PYTHONPATH=src python -m pytest tests/test_goldens.py --update-goldens

then review and commit the changed files under tests/fixtures/goldens/.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.compiler.config import turnpike_config
from repro.compiler.pipeline import compile_baseline, compile_program
from repro.runtime.codegen import CodegenProgram
from repro.runtime.fastsim import execute_fast
from repro.runtime.trace import TraceSummary
from repro.workloads.generator import build_workload
from repro.workloads.suites import profile, quick_subset

GOLDEN_DIR = Path(__file__).resolve().parent / "fixtures" / "goldens"
GOLDEN_UIDS = [p.uid for p in quick_subset()]


def _summarize(trace, steps: int) -> dict:
    summary = TraceSummary(trace)
    return {
        "steps": steps,
        "total": summary.total,
        "committed": summary.committed,
        "by_kind": summary.by_kind,
        "loads": summary.loads,
        "regular_stores": summary.regular_stores,
        "app_stores": summary.app_stores,
        "spill_stores": summary.spill_stores,
        "checkpoints": summary.checkpoints,
        "boundaries": summary.boundaries,
    }


def build_snapshot(uid: str) -> dict:
    """The golden content for one benchmark (deterministic)."""
    workload = build_workload(profile(uid))
    snapshot: dict[str, dict] = {}
    for scheme, compiled in (
        ("baseline", compile_baseline(workload.program)),
        ("turnpike", compile_program(workload.program, turnpike_config())),
    ):
        result = execute_fast(
            compiled.program, workload.fresh_memory(), collect_trace=True
        )
        snapshot[scheme] = _summarize(result.trace, result.steps)
        if scheme == "turnpike":
            # Pin the codegen backend's superblock formation (default
            # formation thresholds): one warmup run profiles, the second
            # dispatches through the fused chains.
            cg = CodegenProgram(compiled.program, cache=None)
            cg.execute(workload.fresh_memory())
            cg.execute(workload.fresh_memory())
            snapshot["codegen"] = {
                "chains": cg.chains,
                "bails": cg.bail_count,
                "sb_dispatches": cg.sb_dispatches,
            }
    return snapshot


def _golden_path(uid: str) -> Path:
    return GOLDEN_DIR / f"{uid}.json"


@pytest.mark.parametrize("uid", GOLDEN_UIDS)
def test_golden_trace_summary(uid, update_goldens):
    snapshot = build_snapshot(uid)
    path = _golden_path(uid)
    if update_goldens:
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
        return
    assert path.exists(), (
        f"missing golden fixture {path.name}; run pytest with "
        f"--update-goldens to create it"
    )
    golden = json.loads(path.read_text())
    assert snapshot == golden, (
        f"{uid}: dynamic behaviour diverged from the golden snapshot; "
        f"if intentional, regenerate with --update-goldens and commit"
    )


def test_goldens_cover_quick_subset():
    """Every quick-subset benchmark has a fixture and nothing extra."""
    have = {p.stem for p in GOLDEN_DIR.glob("*.json")}
    assert have == set(GOLDEN_UIDS)
