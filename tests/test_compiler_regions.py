"""Region partitioning tests (Turnstile Section 2.1 / Turnpike 4.3.1)."""

import pytest

from repro.compiler.checkpoints import predict_checkpoint_defs
from repro.compiler.regions import (
    check_region_invariants,
    partition_regions,
)
from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import Opcode

from helpers import build_diamond, build_sum_loop


def _straightline_stores(n_stores: int):
    b = ProgramBuilder("stores")
    b.begin_block("entry")
    base = b.li(0x100)
    v = b.li(7)
    for k in range(n_stores):
        b.store(v, base, offset=4 * k)
    b.ret()
    return b.finish()


class TestPartitioning:
    def test_entry_gets_boundary(self):
        prog = _straightline_stores(1)
        partition_regions(prog, max_stores=4)
        assert prog.entry.instructions[0].is_boundary

    def test_every_instruction_tagged(self):
        prog = _straightline_stores(6)
        partition_regions(prog, max_stores=2)
        for instr in prog.instructions():
            assert instr.region_id is not None

    def test_store_cap_respected_in_block(self):
        prog = _straightline_stores(10)
        partition_regions(prog, max_stores=2)
        assert check_region_invariants(prog, max_stores=2) == []

    def test_number_of_regions_scales_with_cap(self):
        few = _straightline_stores(8)
        many = _straightline_stores(8)
        r_big = partition_regions(few, max_stores=4)
        r_small = partition_regions(many, max_stores=1)
        assert r_small.num_regions > r_big.num_regions

    def test_loop_with_store_forces_header_boundary(self):
        prog = build_sum_loop(trip=4)
        partition_regions(prog, max_stores=4)
        loop_block = prog.block("loop")
        assert loop_block.instructions[0].is_boundary

    def test_storefree_loop_stays_in_one_region(self):
        b = ProgramBuilder("pure")
        b.begin_block("entry")
        i = b.li(0)
        acc = b.li(0)
        n = b.li(8)
        b.jmp("loop")
        b.begin_block("loop")
        # acc is consumed inside the loop only -> no predicted checkpoint.
        acc2 = b.add(acc, i)
        b.xor(acc2, i)
        b.addi(i, 1, dest=i)
        b.blt(i, n, "loop", "exit")
        b.begin_block("exit")
        b.ret()
        prog = b.finish()
        partition_regions(prog, max_stores=2)
        regions = {instr.region_id for instr in prog.block("loop").instructions}
        assert len(regions) == 1
        assert not prog.block("loop").instructions[0].is_boundary

    def test_ckpt_only_loop_forces_boundary_without_licm(self):
        prog = build_sum_loop(trip=4)
        # Remove the in-loop store so only predicted checkpoints remain.
        loop = prog.block("loop")
        loop.instructions = [i for i in loop.instructions if not i.is_store]
        predicted = predict_checkpoint_defs(prog)
        assert predicted  # acc / i escape the block
        partition_regions(prog, max_stores=2, predicted_ckpt_defs=predicted)
        assert prog.block("loop").instructions[0].is_boundary

    def test_ckpt_only_loop_relaxed_with_licm(self):
        prog = build_sum_loop(trip=4)
        loop = prog.block("loop")
        loop.instructions = [i for i in loop.instructions if not i.is_store]
        predicted = predict_checkpoint_defs(prog)
        partition_regions(
            prog, max_stores=2, predicted_ckpt_defs=predicted, licm_sinking=True
        )
        assert not prog.block("loop").instructions[0].is_boundary

    def test_join_with_agreeing_preds_keeps_region(self):
        """Both diamond arms stay in the entry region (path-insensitive
        ids agree), so the join continues that region."""
        prog = build_diamond()
        partition_regions(prog, max_stores=4)
        join = prog.block("join")
        assert not join.instructions[0].is_boundary

    def test_join_with_disagreeing_preds_starts_region(self):
        """When one arm split into a new region, the join cannot inherit a
        path-dependent id and must open a fresh region."""
        from repro.isa.builder import ProgramBuilder

        b = ProgramBuilder("dis")
        b.begin_block("entry")
        x = b.live_in()
        zero = b.li(0)
        base = b.li(0x800)
        b.store(zero, base, offset=64)
        b.blt(x, zero, "heavy", "light")
        b.begin_block("heavy")
        b.store(x, base)
        b.store(x, base, offset=4)
        b.store(x, base, offset=8)
        b.jmp("join")
        b.begin_block("light")
        b.jmp("join")
        b.begin_block("join")
        b.store(zero, base, offset=12)
        b.ret()
        prog = b.finish()
        partition_regions(prog, max_stores=2)
        join = prog.block("join")
        assert join.instructions[0].is_boundary

    def test_region_metadata_counts(self):
        prog = _straightline_stores(4)
        result = partition_regions(prog, max_stores=2)
        total = sum(r.instruction_count for r in result.regions.values())
        non_boundary = sum(
            1 for i in prog.instructions() if not i.is_boundary
        )
        assert total == non_boundary

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            partition_regions(_straightline_stores(1), max_stores=0)

    def test_predicted_units_count_toward_cap(self):
        # A def that will be checkpointed consumes a unit: with cap 1,
        # a store following a predicted def must open a new region.
        b = ProgramBuilder("pred")
        b.begin_block("entry")
        base = b.li(0x100)
        v = b.li(1)
        b.store(v, base)
        b.jmp("next")
        b.begin_block("next")
        b.store(v, base, offset=4)
        b.ret()
        prog = b.finish()
        # Mark the store-value def as predicted (normally liveness does).
        li_v = prog.entry.instructions[1]
        result = partition_regions(
            prog, max_stores=1, predicted_ckpt_defs={li_v.uid}
        )
        assert result.num_regions >= 3

    def test_boundary_never_splits_spill_group(self):
        """Regions must not separate a spill reload/op/store group."""
        from repro.compiler.config import turnstile_config
        from repro.compiler.pipeline import compile_program
        from repro.compiler.regalloc import scratch_registers
        from repro.workloads.suites import load_workload

        wl = load_workload("CPU2006.gemsfdtd")
        compiled = compile_program(wl.program, turnstile_config())
        scratch = set(scratch_registers(compiled.program.register_file))
        for block in compiled.program.blocks:
            live: set = set()
            for instr in reversed(block.instructions):
                if instr.is_boundary:
                    assert not live, (
                        f"boundary splits live scratch {live} in {block.label}"
                    )
                if instr.dest is not None and instr.dest in scratch:
                    live.discard(instr.dest)
                for src in instr.srcs:
                    if src in scratch:
                        live.add(src)


class TestRegionInvariantChecker:
    def test_detects_untagged_instruction(self):
        prog = _straightline_stores(2)
        partition_regions(prog, max_stores=4)
        prog.entry.instructions[2].region_id = None
        problems = check_region_invariants(prog, max_stores=4)
        assert any("no region id" in p for p in problems)

    def test_detects_region_change_without_boundary(self):
        prog = _straightline_stores(2)
        partition_regions(prog, max_stores=4)
        prog.entry.instructions[-2].region_id = 999
        problems = check_region_invariants(prog, max_stores=4)
        assert any("without a boundary" in p for p in problems)
