"""Tests for the ISA layer: registers, instructions, programs, builder."""

import pytest

from repro.isa import instructions as ins
from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import Instruction, Opcode, StoreKind
from repro.isa.program import Program, ProgramError
from repro.isa.registers import DEFAULT_REGISTER_FILE, Reg, RegisterFile


class TestReg:
    def test_interning_virtual(self):
        assert Reg.virt(3) is Reg.virt(3)

    def test_interning_physical(self):
        assert Reg.phys(7) is Reg.phys(7)

    def test_virtual_physical_distinct(self):
        assert Reg.virt(5) != Reg.phys(5)

    def test_names(self):
        assert Reg.virt(2).name == "v2"
        assert Reg.phys(2).name == "r2"

    def test_hash_equality_consistency(self):
        assert hash(Reg.virt(9)) == hash(Reg.virt(9))
        assert hash(Reg.virt(9)) != hash(Reg.phys(9))

    def test_ordering(self):
        assert Reg.phys(1) < Reg.phys(2)
        assert Reg.phys(31) < Reg.virt(0)  # physical sorts before virtual


class TestRegisterFile:
    def test_default_has_32_registers(self):
        assert DEFAULT_REGISTER_FILE.num_registers == 32

    def test_reserved_not_allocatable(self):
        allocatable = DEFAULT_REGISTER_FILE.allocatable
        for idx in DEFAULT_REGISTER_FILE.reserved:
            assert Reg.phys(idx) not in allocatable

    def test_allocatable_count(self):
        rf = RegisterFile(num_registers=32, reserved=(0, 29))
        assert len(rf.allocatable) == 30

    def test_stack_pointer(self):
        assert DEFAULT_REGISTER_FILE.stack_pointer == Reg.phys(29)

    def test_zero_register(self):
        assert DEFAULT_REGISTER_FILE.zero == Reg.phys(0)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            RegisterFile(num_registers=2)

    def test_reserved_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            RegisterFile(num_registers=8, reserved=(9,))


class TestInstructionConstructors:
    def test_alu_rr(self):
        instr = ins.alu_rr(Opcode.ADD, Reg.virt(0), Reg.virt(1), Reg.virt(2))
        assert instr.dest == Reg.virt(0)
        assert instr.srcs == (Reg.virt(1), Reg.virt(2))

    def test_alu_rr_rejects_non_alu(self):
        with pytest.raises(ValueError):
            ins.alu_rr(Opcode.LD, Reg.virt(0), Reg.virt(1), Reg.virt(2))

    def test_alu_ri(self):
        instr = ins.alu_ri(Opcode.ADDI, Reg.virt(0), Reg.virt(1), 42)
        assert instr.imm == 42

    def test_alu_ri_rejects_rr_op(self):
        with pytest.raises(ValueError):
            ins.alu_ri(Opcode.ADD, Reg.virt(0), Reg.virt(1), 1)

    def test_store_operand_order(self):
        st = ins.store(Reg.virt(1), Reg.virt(2), offset=8)
        assert st.srcs == (Reg.virt(1), Reg.virt(2))  # value, base
        assert st.imm == 8
        assert st.store_kind is StoreKind.APPLICATION

    def test_load(self):
        ld = ins.load(Reg.virt(0), Reg.virt(1), 4)
        assert ld.is_load
        assert ld.dest == Reg.virt(0)

    def test_checkpoint_classification(self):
        ck = ins.checkpoint(Reg.phys(3))
        assert ck.is_checkpoint and ck.is_store and not ck.is_regular_store
        assert ck.store_kind is StoreKind.CHECKPOINT

    def test_branch_targets(self):
        br = ins.branch(Opcode.BEQ, Reg.virt(0), Reg.virt(1), "a", "b")
        assert br.targets == ("a", "b")
        assert br.is_branch and br.is_terminator

    def test_branch_rejects_non_branch_op(self):
        with pytest.raises(ValueError):
            ins.branch(Opcode.ADD, Reg.virt(0), Reg.virt(1), "a", "b")

    def test_jump_and_ret_are_terminators(self):
        assert ins.jump("x").is_terminator
        assert ins.ret().is_terminator

    def test_boundary_properties(self):
        bd = ins.boundary()
        assert bd.is_boundary
        assert bd.encoded_size == 0  # boundaries are metadata, not bytes

    def test_regular_instruction_size(self):
        assert ins.li(Reg.virt(0), 1).encoded_size == 4

    def test_uids_unique(self):
        a, b = ins.nop(), ins.nop()
        assert a.uid != b.uid

    def test_copy_fresh_uid_same_fields(self):
        original = ins.alu_ri(Opcode.ADDI, Reg.virt(0), Reg.virt(1), 7)
        original.region_id = 3
        original.annotations["k"] = "v"
        clone = original.copy()
        assert clone.uid != original.uid
        assert clone.imm == 7 and clone.region_id == 3
        assert clone.annotations == {"k": "v"}
        clone.annotations["k2"] = 1
        assert "k2" not in original.annotations

    def test_replace_uses(self):
        instr = ins.alu_rr(Opcode.ADD, Reg.virt(0), Reg.virt(1), Reg.virt(2))
        instr.replace_uses({Reg.virt(1): Reg.phys(5)})
        assert instr.srcs == (Reg.phys(5), Reg.virt(2))

    def test_replace_defs(self):
        instr = ins.li(Reg.virt(0), 1)
        instr.replace_defs({Reg.virt(0): Reg.phys(9)})
        assert instr.dest == Reg.phys(9)


class TestProgram:
    def test_duplicate_label_rejected(self):
        prog = Program("p")
        prog.add_block("a")
        with pytest.raises(ProgramError):
            prog.add_block("a")

    def test_validate_requires_terminator(self):
        prog = Program("p")
        blk = prog.add_block("entry")
        blk.instructions.append(ins.li(Reg.virt(0), 1))
        with pytest.raises(ProgramError, match="terminator"):
            prog.validate()

    def test_validate_rejects_unknown_target(self):
        prog = Program("p")
        blk = prog.add_block("entry")
        blk.instructions.append(ins.jump("nowhere"))
        with pytest.raises(ProgramError, match="unknown block"):
            prog.validate()

    def test_validate_requires_ret(self):
        prog = Program("p")
        blk = prog.add_block("entry")
        blk.instructions.append(ins.jump("entry"))
        with pytest.raises(ProgramError, match="RET"):
            prog.validate()

    def test_validate_rejects_midblock_terminator(self):
        prog = Program("p")
        blk = prog.add_block("entry")
        blk.instructions.append(ins.ret())
        blk.instructions.append(ins.nop())
        with pytest.raises(ProgramError):
            prog.validate()

    def test_validate_rejects_shared_instruction(self):
        prog = Program("p")
        a = prog.add_block("a")
        shared = ins.nop()
        a.instructions.extend([shared, ins.jump("b")])
        b = prog.add_block("b")
        b.instructions.extend([shared, ins.ret()])
        with pytest.raises(ProgramError, match="twice"):
            prog.validate()

    def test_fresh_vreg_monotonic(self):
        prog = Program("p")
        a = prog.fresh_vreg()
        b = prog.fresh_vreg()
        assert b.index == a.index + 1

    def test_copy_is_deep(self, sum_loop):
        clone = sum_loop.copy()
        assert clone.num_instructions == sum_loop.num_instructions
        clone.blocks[0].instructions[0].imm = 12345
        assert sum_loop.blocks[0].instructions[0].imm != 12345

    def test_copy_preserves_live_in(self, diamond):
        assert diamond.copy().live_in == diamond.live_in

    def test_static_size(self, sum_loop):
        assert sum_loop.static_size_bytes == 4 * sum_loop.num_instructions

    def test_insert_block_after(self):
        prog = Program("p")
        prog.add_block("a")
        prog.add_block("c")
        prog.insert_block_after("a", "b")
        assert [b.label for b in prog.blocks] == ["a", "b", "c"]

    def test_all_registers(self, sum_loop):
        regs = sum_loop.all_registers()
        assert all(r.is_virtual for r in regs)
        assert len(regs) >= 5


class TestBasicBlock:
    def test_insert_before_terminator(self):
        b = ProgramBuilder("p")
        b.begin_block("entry")
        b.li(1)
        b.ret()
        block = b.program.block("entry")
        block.insert_before_terminator([ins.nop()])
        assert block.instructions[-1].op is Opcode.RET
        assert block.instructions[-2].op is Opcode.NOP

    def test_insert_before_terminator_no_terminator(self):
        from repro.isa.program import BasicBlock

        block = BasicBlock("x", [ins.nop()])
        block.insert_before_terminator([ins.li(Reg.virt(0), 1)])
        assert block.instructions[-1].op is Opcode.LI

    def test_successors(self):
        from repro.isa.program import BasicBlock

        block = BasicBlock("x", [ins.branch(Opcode.BNE, Reg.virt(0), Reg.virt(1), "t", "f")])
        assert block.successors() == ("t", "f")

    def test_body_excludes_terminator(self):
        from repro.isa.program import BasicBlock

        block = BasicBlock("x", [ins.nop(), ins.ret()])
        assert len(block.body) == 1


class TestProgramBuilder:
    def test_builder_produces_valid_program(self, sum_loop):
        sum_loop.validate()  # should not raise

    def test_fresh_labels_unique(self):
        b = ProgramBuilder("p")
        labels = {b.fresh_label() for _ in range(100)}
        assert len(labels) == 100

    def test_emit_requires_block(self):
        b = ProgramBuilder("p")
        with pytest.raises(RuntimeError):
            b.li(1)

    def test_live_in_recorded(self):
        b = ProgramBuilder("p")
        b.begin_block("entry")
        reg = b.live_in()
        b.ret()
        assert reg in b.program.live_in

    def test_alu_helpers_create_fresh_dest(self):
        b = ProgramBuilder("p")
        b.begin_block("entry")
        x = b.li(1)
        y = b.add(x, x)
        assert y != x

    def test_dest_override(self):
        b = ProgramBuilder("p")
        b.begin_block("entry")
        x = b.li(1)
        out = b.addi(x, 1, dest=x)
        assert out is x

    def test_finish_validates(self):
        b = ProgramBuilder("p")
        b.begin_block("entry")
        b.li(1)
        with pytest.raises(ProgramError):
            b.finish()

    def test_switch_to(self):
        b = ProgramBuilder("p")
        b.begin_block("a")
        b.jmp("b")
        b.begin_block("b")
        b.ret()
        b.switch_to("a")
        assert b.current_label == "a"
