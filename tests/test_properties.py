"""Property-based tests (hypothesis): compiler correctness on random
programs, recovery under random injections, and structure invariants.

These are the heavy guns: random TK loop nests are generated, pushed
through every compiler configuration, and must (a) stay functionally
identical to the source and (b) survive arbitrary single-event upsets on
the resilient machine.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.compiler.config import turnpike_config, turnstile_config
from repro.compiler.pipeline import compile_baseline, compile_program
from repro.faults.campaign import turnpike_machine_config
from repro.faults.injector import golden_memory, run_with_injection
from repro.isa.builder import ProgramBuilder
from repro.isa.registers import Reg
from repro.runtime.interpreter import execute
from repro.runtime.machine import Injection, InjectionTarget
from repro.runtime.memory import Memory

# ---------------------------------------------------------------------------
# Random program generation
# ---------------------------------------------------------------------------

_BIN_OPS = ("add", "sub", "mul", "and_", "or_", "xor", "slt")


@st.composite
def random_programs(draw):
    """A random single- or double-loop program with stores and branches."""
    seed = draw(st.integers(0, 2**31))
    n_loops = draw(st.integers(1, 2))
    ops_per_loop = draw(st.integers(1, 6))
    trips = [draw(st.integers(1, 12)) for _ in range(n_loops)]
    use_diamond = draw(st.booleans())

    import random

    rng = random.Random(seed)
    b = ProgramBuilder(f"rand{seed}")
    b.begin_block("entry")
    base = b.li(0x1000)
    regs = [b.li(rng.randrange(-100, 100)) for _ in range(4)]
    slot = 0

    for loop_idx in range(n_loops):
        i = b.li(0)
        limit = b.li(trips[loop_idx])
        header = b.fresh_label(f"L{loop_idx}_h")
        exit_label = b.fresh_label(f"L{loop_idx}_x")
        b.jmp(header)
        b.begin_block(header)
        acc = regs[loop_idx % len(regs)]
        for _ in range(ops_per_loop):
            op = getattr(b, rng.choice(_BIN_OPS))
            other = regs[rng.randrange(len(regs))]
            op(acc, other, dest=acc)
        b.store(acc, base, offset=4 * slot)
        slot += 1
        if use_diamond and loop_idx == 0:
            then_l = b.fresh_label("t")
            else_l = b.fresh_label("e")
            join_l = b.fresh_label("j")
            b.blt(acc, limit, then_l, else_l)
            b.begin_block(then_l)
            b.addi(acc, 3, dest=acc)
            b.jmp(join_l)
            b.begin_block(else_l)
            b.xor(acc, limit, dest=acc)
            b.jmp(join_l)
            b.begin_block(join_l)
        b.addi(i, 1, dest=i)
        b.blt(i, limit, header, exit_label)
        b.begin_block(exit_label)
    for k, reg in enumerate(regs):
        b.store(reg, base, offset=4 * (slot + k))
    b.ret()
    return b.finish()


_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestCompilerEquivalence:
    @given(random_programs())
    @_SETTINGS
    def test_baseline_compile_preserves_semantics(self, prog):
        golden = execute(prog, Memory()).memory.data_image()
        compiled = compile_baseline(prog)
        got = execute(compiled.program, Memory()).memory.data_image()
        assert got == golden

    @given(random_programs())
    @_SETTINGS
    def test_turnstile_compile_preserves_semantics(self, prog):
        golden = execute(prog, Memory()).memory.data_image()
        compiled = compile_program(prog, turnstile_config())
        got = execute(compiled.program, Memory()).memory.data_image()
        assert got == golden

    @given(random_programs())
    @_SETTINGS
    def test_turnpike_compile_preserves_semantics(self, prog):
        golden = execute(prog, Memory()).memory.data_image()
        compiled = compile_program(prog, turnpike_config())
        got = execute(compiled.program, Memory()).memory.data_image()
        assert got == golden

    @given(random_programs())
    @_SETTINGS
    def test_compiled_programs_validate(self, prog):
        for cfg in (turnstile_config(), turnpike_config()):
            compiled = compile_program(prog, cfg)
            compiled.program.validate()
            # Region tags and boundaries are structurally consistent.
            from repro.compiler.regions import check_region_invariants

            problems = check_region_invariants(
                compiled.program, max_stores=cfg.sb_size
            )
            assert problems == []

    @given(random_programs())
    @_SETTINGS
    def test_recovery_coverage_no_gaps(self, prog):
        from repro.compiler.recovery import checkpoint_coverage_gaps

        compiled = compile_program(prog, turnpike_config())
        assert checkpoint_coverage_gaps(compiled.program) == []


class TestResilientMachineProperty:
    @given(random_programs())
    @_SETTINGS
    def test_faultfree_machine_matches_interpreter(self, prog):
        from repro.runtime.machine import ResilienceConfig, ResilientMachine

        compiled = compile_program(prog, turnpike_config())
        golden = execute(compiled.program, Memory()).memory.data_image()
        machine = ResilientMachine(compiled, ResilienceConfig(wcdl=7), Memory())
        machine.run()
        assert machine.mem.data_image() == golden

    @given(
        random_programs(),
        st.integers(1, 5000),
        st.integers(1, 30),
        st.integers(0, 31),
        st.integers(0, 10),
    )
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_recovery_from_arbitrary_flip(
        self, prog, time, reg_idx, bit, delay
    ):
        """THE protocol property: any single register flip, detected
        within WCDL, must leave final memory identical to the golden run
        under the full Turnpike machine."""
        reserved = set(prog.register_file.reserved)
        if reg_idx in reserved:
            reg_idx += 1
        compiled = compile_program(prog, turnpike_config())
        golden = golden_memory(compiled, Memory())
        injection = Injection(
            time=time,
            target=InjectionTarget.REGISTER,
            reg=Reg.phys(reg_idx % 32 if reg_idx % 32 not in reserved else 1),
            bit=bit,
            detection_delay=delay,
        )
        outcome = run_with_injection(
            compiled, turnpike_machine_config(wcdl=10), Memory(), injection, golden
        )
        assert outcome.error is None
        assert outcome.correct


class TestStructuralProperties:
    @given(st.integers(1, 64), st.integers(1, 8))
    @settings(max_examples=30, deadline=None)
    def test_compact_clq_conservative(self, n_addrs, clq_size):
        """Compact CLQ conflicts are a superset of ideal CLQ conflicts."""
        import random

        from repro.arch.clq import CompactCLQ, IdealCLQ

        rng = random.Random(n_addrs * 31 + clq_size)
        ideal, compact = IdealCLQ(), CompactCLQ(size=clq_size)
        ideal.begin_region(0)
        compact.begin_region(0)
        for _ in range(n_addrs):
            addr = rng.randrange(64) * 4
            ideal.record_load(0, addr)
            compact.record_load(0, addr)
        for addr in range(0, 300, 4):
            if ideal.store_has_war(0, addr):
                assert compact.store_has_war(0, addr)

    @given(st.lists(st.integers(0, 3), min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_coloring_pool_never_leaks(self, ops):
        """Colors are conserved: available + in-flight + verified == pool."""
        from repro.arch.coloring import QUARANTINE, ColorMaps

        cm = ColorMaps(num_colors=4)
        reg = 7
        live_instances: list[int] = []
        next_instance = 0
        for op in ops:
            if op in (0, 1):  # assign in a new region instance
                cm.assign(next_instance, reg)
                live_instances.append(next_instance)
                next_instance += 1
            elif op == 2 and live_instances:  # verify oldest
                cm.verify(live_instances.pop(0))
            elif op == 3 and live_instances:  # recovery discard
                cm.discard(live_instances)
                live_instances = []
            in_flight = sum(
                1
                for inst in live_instances
                if cm._uc.get(inst, {}).get(reg, QUARANTINE) != QUARANTINE
            )
            verified = (
                1
                if cm.verified_color(reg) not in (None, QUARANTINE)
                else 0
            )
            assert cm.available(reg) + in_flight + verified == 4

    @given(st.integers(2, 400), st.integers(1, 3))
    @settings(max_examples=30, deadline=None)
    def test_wrap32_involution(self, value, sign):
        from repro.runtime.memory import wrap32

        v = value if sign != 2 else -value
        assert wrap32(wrap32(v)) == wrap32(v)
        assert -(2**31) <= wrap32(v) < 2**31
