"""Typed fault-outcome taxonomy tests.

Every injected run must land in exactly one :class:`FaultOutcomeKind`
bucket, and the mapping from machine behaviour to bucket must be
deterministic: completed-and-correct-without-recovery is MASKED,
fail-stop exceptions are DETECTED_HALT, the watchdog is TIMEOUT, and
*any* unexpected exception surfaces as PROTOCOL_BUG with a traceback
instead of being silently swallowed.
"""

import pytest

from repro.compiler.config import turnpike_config
from repro.compiler.pipeline import compile_program
from repro.faults.campaign import (
    _horizon,
    turnpike_machine_config,
    unsafe_machine_config,
)
from repro.faults.injector import (
    FaultOutcomeKind,
    InjectionOutcome,
    golden_memory,
    outcome_from_dict,
    outcome_to_dict,
    random_register_injections,
    run_with_injection,
)
from repro.runtime.machine import (
    Injection,
    InjectionTarget,
    ProtocolError,
    RecoveryFailure,
    ResilientMachine,
)
from repro.runtime.memory import Memory

from helpers import build_sum_loop


@pytest.fixture(scope="module")
def loop_setup():
    compiled = compile_program(build_sum_loop(trip=40), turnpike_config())
    memory = Memory()
    golden = golden_memory(compiled, memory)
    return compiled, memory, golden


def _memory_injection(time: int, bits=(), bit: int = 3) -> Injection:
    return Injection(
        time=time,
        target=InjectionTarget.MEMORY,
        bit=bit,
        bits=tuple(bits),
        detection_delay=2,
        addr=0x400,
    )


class TestKindClassification:
    def test_injection_past_end_of_run_is_masked(self, loop_setup):
        compiled, memory, golden = loop_setup
        outcome = run_with_injection(
            compiled,
            turnpike_machine_config(10),
            memory,
            _memory_injection(time=100_000),
            golden,
        )
        assert outcome.kind is FaultOutcomeKind.MASKED
        assert outcome.correct and not outcome.recovered
        assert outcome.masked and outcome.contained

    def test_single_bit_memory_error_is_contained(self, loop_setup):
        compiled, memory, golden = loop_setup
        outcome = run_with_injection(
            compiled,
            turnpike_machine_config(10),
            memory,
            _memory_injection(time=200),
            golden,
        )
        assert outcome.kind in (
            FaultOutcomeKind.MASKED,
            FaultOutcomeKind.RECOVERED,
        )
        assert outcome.correct

    def test_double_bit_memory_error_is_detected_halt(self, loop_setup):
        compiled, memory, golden = loop_setup
        outcome = run_with_injection(
            compiled,
            turnpike_machine_config(10),
            memory,
            _memory_injection(time=200, bits=(3, 7)),
            golden,
        )
        assert outcome.kind is FaultOutcomeKind.DETECTED_HALT
        assert outcome.contained and not outcome.correct
        assert "uncorrectable" in (outcome.error or "")

    def test_watchdog_maps_to_timeout(self, loop_setup):
        compiled, memory, golden = loop_setup
        outcome = run_with_injection(
            compiled,
            turnpike_machine_config(10),
            memory,
            _memory_injection(time=200),
            golden,
            max_steps=5,
        )
        assert outcome.kind is FaultOutcomeKind.TIMEOUT
        assert not outcome.contained
        assert "WatchdogTimeout" in (outcome.error or "")

    @pytest.mark.parametrize(
        "exc, expected_kind",
        [
            (RuntimeError("synthetic crash"), FaultOutcomeKind.PROTOCOL_BUG),
            (ProtocolError("impossible state"), FaultOutcomeKind.PROTOCOL_BUG),
            (RecoveryFailure("no binding"), FaultOutcomeKind.DETECTED_HALT),
        ],
    )
    def test_exception_mapping(self, loop_setup, monkeypatch, exc, expected_kind):
        compiled, memory, golden = loop_setup

        def explode(self):
            raise exc

        monkeypatch.setattr(ResilientMachine, "run", explode)
        outcome = run_with_injection(
            compiled,
            turnpike_machine_config(10),
            memory,
            _memory_injection(time=200),
            golden,
        )
        assert outcome.kind is expected_kind
        assert type(exc).__name__ in (outcome.error or "")
        if expected_kind is FaultOutcomeKind.PROTOCOL_BUG:
            # Unexpected exceptions must carry the full traceback so the
            # campaign report is debuggable, not just countable.
            assert outcome.traceback is not None
            assert type(exc).__name__ in outcome.traceback
            assert str(exc) in outcome.traceback


class TestMaskedSemantics:
    def _outcome(self, kind, correct, recovered):
        return InjectionOutcome(
            injection=_memory_injection(time=5),
            kind=kind,
            correct=correct,
            recovered=recovered,
            parity_detected=False,
        )

    def test_sdc_is_never_masked(self):
        outcome = self._outcome(FaultOutcomeKind.SDC, False, True)
        assert not outcome.masked
        assert not outcome.contained

    def test_recovered_run_is_not_masked(self):
        outcome = self._outcome(FaultOutcomeKind.RECOVERED, True, True)
        assert not outcome.masked
        assert outcome.contained

    def test_masked_requires_correct_without_recovery(self):
        outcome = self._outcome(FaultOutcomeKind.MASKED, True, False)
        assert outcome.masked


class TestSerializationRoundTrip:
    @pytest.fixture(scope="class")
    def unsafe_outcomes(self):
        """Register campaign on the Figure 16 unsafe configuration."""
        from repro.workloads.suites import load_workload

        wl = load_workload("CPU2006.bzip2")
        compiled = compile_program(wl.program, turnpike_config())
        memory = wl.fresh_memory()
        golden = golden_memory(compiled, memory)
        horizon = _horizon(compiled, memory)
        injections = random_register_injections(
            compiled, wcdl=10, count=8, seed=77, horizon=horizon
        )
        return [
            run_with_injection(
                compiled, unsafe_machine_config(10), memory, inj, golden
            )
            for inj in injections
        ]

    def test_unsafe_config_produces_sdc(self, unsafe_outcomes):
        sdc = [o for o in unsafe_outcomes if o.kind is FaultOutcomeKind.SDC]
        assert sdc, "Figure 16 unsafe mode should corrupt some runs"
        for o in sdc:
            assert not o.correct and not o.masked and not o.contained

    def test_outcome_round_trip_is_lossless(self, unsafe_outcomes):
        for outcome in unsafe_outcomes:
            restored = outcome_from_dict(outcome_to_dict(outcome))
            assert restored == outcome

    def test_round_trip_preserves_error_text(self, loop_setup, monkeypatch):
        compiled, memory, golden = loop_setup

        def explode(self):
            raise RuntimeError("boom")

        monkeypatch.setattr(ResilientMachine, "run", explode)
        outcome = run_with_injection(
            compiled,
            turnpike_machine_config(10),
            memory,
            _memory_injection(time=200),
            golden,
        )
        restored = outcome_from_dict(outcome_to_dict(outcome))
        assert restored == outcome
        assert restored.traceback == outcome.traceback


class TestInjectionValidation:
    """Satellite: arm_injection rejects malformed injections up front."""

    def _machine(self, loop_setup):
        compiled, memory, _ = loop_setup
        return ResilientMachine(
            compiled, turnpike_machine_config(10), memory.copy()
        )

    def test_detection_delay_beyond_wcdl_rejected(self, loop_setup):
        machine = self._machine(loop_setup)
        bad = Injection(
            time=5,
            target=InjectionTarget.MEMORY,
            bit=0,
            detection_delay=11,
            addr=0x400,
        )
        with pytest.raises(ValueError, match="exceed WCDL"):
            machine.arm_injection(bad)

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(time=0, target=InjectionTarget.PC, bit=1), "time"),
            (dict(time=5, target=InjectionTarget.PC, bit=40), "bit"),
            (
                dict(time=5, target=InjectionTarget.PC, bit=3, bits=(3, 3)),
                "duplicate",
            ),
            (dict(time=5, target=InjectionTarget.REGISTER, bit=3), "register"),
            (
                dict(time=5, target=InjectionTarget.PC, bit=3, addr=0x400),
                "MEMORY",
            ),
            (
                dict(
                    time=5,
                    target=InjectionTarget.MEMORY,
                    bit=3,
                    addr=-4,
                ),
                "non-negative",
            ),
        ],
    )
    def test_malformed_injection_rejected(self, loop_setup, kwargs, match):
        machine = self._machine(loop_setup)
        with pytest.raises(ValueError, match=match):
            machine.arm_injection(Injection(**kwargs))
