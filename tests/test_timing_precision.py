"""Cycle-precise checks of the verification-timing math in the core.

These pin the exact store-buffer release semantics: a quarantined store
becomes releasable at (region end + WCDL + drain position), and a
stalled store resumes exactly then.
"""

from repro.arch.config import CoreConfig, ResilienceHardwareConfig
from repro.arch.core import simulate_trace
from repro.runtime import trace as tr


def _alu(dest=1):
    return (tr.K_ALU, dest, -1, -1, -1, -1, 0)


def _st(addr, region=0):
    return (tr.K_ST, -1, 2, 3, addr, region, 0)


def _boundary(region):
    return (tr.K_BOUNDARY, -1, -1, -1, -1, region, 0)


def _ret():
    return (tr.K_RET, -1, -1, -1, -1, -1, 0)


def _run(trace, wcdl, sb_size=1):
    hw = ResilienceHardwareConfig.turnstile(wcdl=wcdl, sb_size=sb_size)
    return simulate_trace(trace, core=CoreConfig(), resilience=hw)


class TestWcdlReleaseTiming:
    def _two_region_trace(self, fillers: int):
        """Region 0: one store; region 1: ``fillers`` ALUs then a store.

        Region 0 ends when region 1's boundary commits; its entry then
        releases WCDL cycles later. With a 1-entry SB, region 1's store
        stalls until that release — unless the fillers already cover the
        WCDL window.
        """
        trace = [_boundary(0), _st(0x100, 0), _boundary(1)]
        trace += [_alu(4 + (k % 3)) for k in range(fillers)]
        trace += [_st(0x200, 1), _ret()]
        return trace

    def test_stall_scales_linearly_with_wcdl(self):
        trace = self._two_region_trace(fillers=2)
        cycles = {w: _run(trace, w).cycles for w in (10, 20, 40)}
        # Every extra WCDL cycle delays the second store by exactly one
        # cycle once it is the bottleneck.
        assert cycles[20] - cycles[10] == 10
        assert cycles[40] - cycles[20] == 20

    def test_long_region_hides_verification(self):
        """When the gap between the regions exceeds WCDL, the first
        entry has already released: no stall at all."""
        short_gap = self._two_region_trace(fillers=2)
        long_gap = self._two_region_trace(fillers=120)
        wcdl = 10
        stalled = _run(short_gap, wcdl)
        hidden = _run(long_gap, wcdl)
        assert stalled.sb_stall_cycles > 0
        assert hidden.sb_stall_cycles == 0

    def test_exact_release_point(self):
        """Pin the stall amount: with back-to-back regions, the second
        store waits from its commit until region-0-end + WCDL."""
        wcdl = 30
        trace = self._two_region_trace(fillers=0)
        stats = _run(trace, wcdl)
        # Region 0 ends when the second boundary is processed; the
        # second store commits ~2 cycles in; the gap to end+WCDL is the
        # stall. Allow the couple-of-cycles of pipeline skew but require
        # the WCDL-dominated magnitude.
        assert wcdl - 5 <= stats.sb_stall_cycles <= wcdl + 2

    def test_drain_serialises_multiple_entries(self):
        """Two quarantined entries of a region drain one per cycle: a
        third store waits one cycle longer than after a single entry."""
        def trace(n_stores):
            t = [_boundary(0)]
            t += [_st(0x100 + 4 * k, 0) for k in range(n_stores)]
            t += [_boundary(1), _st(0x300, 1), _ret()]
            return t

        one = _run(trace(1), wcdl=20, sb_size=2)
        two = _run(trace(2), wcdl=20, sb_size=2)
        assert two.sb_stall_cycles >= one.sb_stall_cycles

    def test_baseline_immune_to_wcdl(self):
        trace = self._two_region_trace(fillers=2)
        base = ResilienceHardwareConfig.baseline()
        a = simulate_trace(trace, resilience=base).cycles
        # Baseline ignores regions entirely; WCDL is a resilience knob.
        assert a < _run(trace, 10).cycles


class TestColoringTiming:
    def test_colored_checkpoints_dont_occupy_sb(self):
        """Checkpoint-only regions never touch the SB when colors are
        available: a following store sees a free buffer."""
        trace = [_boundary(0), _alu(5), (tr.K_CKPT, -1, 5, -1, -1, 0, 0)]
        trace += [_boundary(1), _st(0x100, 1), _ret()]
        hw = ResilienceHardwareConfig.turnpike(wcdl=50, sb_size=1)
        stats = simulate_trace(trace, resilience=hw)
        assert stats.colored_released == 1
        assert stats.sb_stall_cycles == 0

    def test_turnstile_checkpoint_occupies_sb(self):
        trace = [_boundary(0), _alu(5), (tr.K_CKPT, -1, 5, -1, -1, 0, 0)]
        trace += [_boundary(1), _st(0x100, 1), _ret()]
        hw = ResilienceHardwareConfig.turnstile(wcdl=50, sb_size=1)
        stats = simulate_trace(trace, resilience=hw)
        assert stats.quarantined == 2
        assert stats.sb_stall_cycles > 0
