"""Harness tests: caching, normalized-time plumbing, reporting."""

import pytest

from repro.arch.config import ResilienceHardwareConfig
from repro.compiler.config import turnpike_config, turnstile_config
from repro.harness.experiments import Series
from repro.harness.reporting import (
    format_breakdown_table,
    format_mapping_table,
    format_series_table,
    format_table1,
)
from repro.harness.runner import (
    RunCache,
    default_benchmarks,
    geomean,
    normalized_time,
    simulate,
    turnpike_scheme,
    turnstile_scheme,
)

UID = "CPU2006.gcc"


@pytest.fixture(scope="module")
def cache():
    return RunCache()


class TestRunCache:
    def test_workload_cached(self, cache):
        assert cache.workload(UID) is cache.workload(UID)

    def test_prepared_cached_by_config(self, cache):
        a = cache.prepared(UID, turnpike_config())
        b = cache.prepared(UID, turnpike_config())
        assert a is b
        c = cache.prepared(UID, turnstile_config())
        assert c is not a

    def test_prepared_distinct_by_sb_size(self, cache):
        a = cache.prepared(UID, turnstile_config(sb_size=4))
        b = cache.prepared(UID, turnstile_config(sb_size=40))
        assert a is not b
        # Larger SB -> larger regions -> fewer checkpoints.
        assert b.summary.checkpoints < a.summary.checkpoints

    def test_baseline_cycles_positive(self, cache):
        assert cache.baseline_cycles(UID) > 0

    def test_clear(self):
        c = RunCache()
        c.workload(UID)
        c.clear()
        assert not c._workloads


class TestSimulate:
    def test_normalized_time_above_one(self, cache):
        compiler, hw = turnstile_scheme(wcdl=10)
        value = normalized_time(UID, compiler, hw, cache=cache)
        assert value > 1.0

    def test_turnpike_cheaper(self, cache):
        ts_c, ts_h = turnstile_scheme(wcdl=10)
        tp_c, tp_h = turnpike_scheme(wcdl=10)
        ts = normalized_time(UID, ts_c, ts_h, cache=cache)
        tp = normalized_time(UID, tp_c, tp_h, cache=cache)
        assert tp < ts

    def test_simulate_returns_stats(self, cache):
        compiler, hw = turnpike_scheme(wcdl=10)
        stats = simulate(UID, compiler, hw, cache=cache)
        assert stats.instructions > 0
        assert stats.regions > 0

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([2.0]) == 2.0
        with pytest.raises(ValueError):
            geomean([])

    def test_default_benchmarks_are_36(self):
        assert len(default_benchmarks()) == 36


class TestReporting:
    def _series(self):
        s1 = Series(name="A", per_benchmark={"x": 1.0, "y": 2.0})
        s2 = Series(name="B", per_benchmark={"x": 3.0, "y": 4.0})
        return [s1, s2]

    def test_series_table_contains_rows(self):
        text = format_series_table(self._series(), title="T")
        assert "T" in text and "x" in text and "geomean" in text
        assert "1.00" in text and "4.00" in text

    def test_series_geomean(self):
        s = Series(name="A", per_benchmark={"x": 1.0, "y": 4.0})
        assert s.geomean == pytest.approx(2.0)
        assert s.mean == pytest.approx(2.5)

    def test_mapping_table(self):
        text = format_mapping_table(
            {"bench": (1.5, 2.5)}, headers=("a", "b")
        )
        assert "bench" in text and "1.50" in text

    def test_breakdown_table(self):
        data = {
            "bench": {
                "pruned": 0.2,
                "licm_eliminated": 0.01,
                "colored": 0.3,
                "warfree": 0.1,
                "ra_eliminated": 0.02,
                "indvar_eliminated": 0.05,
                "others": 0.32,
            }
        }
        text = format_breakdown_table(data)
        assert "20.0%" in text

    def test_table1_rendering(self):
        from repro.hwcost.cacti import build_table1

        text = format_table1(build_table1())
        assert "621.28" in text
        assert "Turnpike in total" in text
        assert "%" in text

    def test_empty_series_list(self):
        assert format_series_table([]) == "(no data)"
