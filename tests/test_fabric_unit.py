"""Unit tests for the multi-node campaign fabric: the consistent-hash
ring, lease planning/completion/merging, coordinator routing and
degradation (failover, stealing, local fallback), worker-node
heartbeats, stale-endpoint takeover, and the locked fabric metric
names — all in-process with stub pools, no simulation work."""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.harness.artifacts import code_digest
from repro.service.client import StaleEndpointError, resolve_endpoint
from repro.service.coordinator import (
    Coordinator,
    CoordinatorConfig,
    HashRing,
    NodeInfo,
    lease_complete,
    merge_manifests,
    plan_leases,
    shard_count,
)
from repro.service.jobs import JobSpec, job_key
from repro.service.journal import Journal
from repro.service.node import NodeConfig, WorkerNode
from repro.service.server import JobService, ServiceConfig

from test_service_unit import StubPool, http, wait_state

UID = "SPLASH3.radix"


# -- hash ring ---------------------------------------------------------------


class TestHashRing:
    def test_membership(self):
        ring = HashRing()
        ring.add("a")
        ring.add("b")
        ring.add("a")  # idempotent
        assert len(ring) == 2
        assert "a" in ring and "c" not in ring
        ring.remove("a")
        ring.remove("a")  # idempotent
        assert len(ring) == 1 and "a" not in ring

    def test_preference_is_a_permutation(self):
        ring = HashRing()
        for node in ("a", "b", "c"):
            ring.add(node)
        order = ring.preference("some-key")
        assert sorted(order) == ["a", "b", "c"]
        assert ring.preference("some-key") == order  # deterministic
        assert HashRing().preference("k") == []

    def test_removal_preserves_survivor_order(self):
        """The consistent-hashing property: dropping one node never
        reorders the surviving nodes in any key's failover list."""
        ring = HashRing()
        for node in ("a", "b", "c", "d"):
            ring.add(node)
        keys = [f"key-{i}" for i in range(50)]
        before = {k: ring.preference(k) for k in keys}
        ring.remove("c")
        for k in keys:
            survivors = [n for n in before[k] if n != "c"]
            assert ring.preference(k) == survivors

    def test_keys_spread_across_nodes(self):
        ring = HashRing()
        for node in ("a", "b", "c"):
            ring.add(node)
        firsts = [ring.preference(f"key-{i}")[0] for i in range(300)]
        counts = {n: firsts.count(n) for n in ("a", "b", "c")}
        assert all(count >= 30 for count in counts.values()), counts


# -- lease planning / merging ------------------------------------------------


def campaign_spec(count=6, shard_size=2) -> JobSpec:
    return JobSpec.create(
        "inject", {"uid": UID, "count": count, "shard_size": shard_size}
    )


class TestLeases:
    def test_plan_covers_every_shard_exactly_once(self, tmp_path):
        spec = campaign_spec(count=7, shard_size=2)  # 4 shards
        assert shard_count(spec.as_dict()) == 4
        leases = plan_leases(spec, str(tmp_path), lease_shards=1)
        assert [lease["shards"] for lease in leases] == [[0], [1], [2], [3]]
        assert len({lease["key"] for lease in leases}) == 4
        for lease in leases:
            rebuilt = JobSpec.create("inject", lease["params"])
            assert job_key(rebuilt) == lease["key"]
            assert lease["manifest"] == str(
                tmp_path / f"{lease['key']}.json"
            )

    def test_plan_with_coarser_leases(self, tmp_path):
        spec = campaign_spec(count=7, shard_size=2)
        leases = plan_leases(spec, str(tmp_path), lease_shards=3)
        assert [lease["shards"] for lease in leases] == [[0, 1, 2], [3]]

    def test_lease_complete_judged_by_store(self, tmp_path):
        spec = campaign_spec()
        lease = plan_leases(spec, str(tmp_path), lease_shards=2)[0]
        assert not lease_complete(lease)  # no manifest at all
        manifest = Path(lease["manifest"])
        manifest.write_text(json.dumps({"spec": {}, "shards": {"0": []}}))
        assert not lease_complete(lease)  # partial coverage
        manifest.write_text(
            json.dumps({"spec": {}, "shards": {"0": [], "1": []}})
        )
        assert lease_complete(lease)
        manifest.write_text("{torn")
        assert not lease_complete(lease)  # corrupt = incomplete

    def test_merge_unions_and_tolerates_garbage(self, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        out = tmp_path / "out.json"
        a.write_text(json.dumps({"spec": {"uid": UID}, "shards": {"0": [1]}}))
        b.write_text(json.dumps({"spec": {"uid": UID}, "shards": {"1": [2]}}))
        assert merge_manifests([a, b, tmp_path / "missing.json"], out) == 2
        merged = json.loads(out.read_text())
        assert merged["shards"] == {"0": [1], "1": [2]}
        # Re-merge including the existing output: idempotent union.
        c = tmp_path / "c.json"
        c.write_text(json.dumps({"spec": {"uid": UID}, "shards": {"2": [3]}}))
        assert merge_manifests([c], out) == 3
        # Nothing but garbage: no output written, count 0.
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        assert merge_manifests([bad], tmp_path / "none.json") == 0
        assert not (tmp_path / "none.json").exists()


# -- in-loop fabric harness --------------------------------------------------


@contextlib.asynccontextmanager
async def running_coordinator(tmp_path, pool=None, **overrides):
    config = CoordinatorConfig(
        journal_dir=tmp_path / "coordinator",
        install_signal_handlers=False,
        pool_factory=lambda workers: pool or StubPool(workers),
        retry_base=0.01,
        node_timeout=overrides.pop("node_timeout", 0.6),
        steal_after=overrides.pop("steal_after", 0.3),
        lease_timeout=overrides.pop("lease_timeout", 5.0),
        poll_interval=0.02,
        **overrides,
    )
    service = Coordinator(config)
    await service.start()
    try:
        yield service
    finally:
        service.begin_drain()
        with contextlib.suppress(asyncio.TimeoutError):
            await asyncio.wait_for(service._stopped.wait(), 5.0)
        await service._shutdown()


@contextlib.asynccontextmanager
async def running_node(tmp_path, name, coordinator, pool=None, **overrides):
    host, port = coordinator.address
    config = NodeConfig(
        journal_dir=tmp_path / name,
        install_signal_handlers=False,
        pool_factory=lambda workers: pool or StubPool(workers),
        retry_base=0.01,
        coordinator=f"{host}:{port}",
        node_id=name,
        heartbeat_interval=0.05,
        **overrides,
    )
    service = WorkerNode(config)
    await service.start()
    try:
        yield service
    finally:
        service.begin_drain()
        with contextlib.suppress(asyncio.TimeoutError):
            await asyncio.wait_for(service._stopped.wait(), 5.0)
        await service._shutdown()


async def wait_for(predicate, timeout=5.0, interval=0.02):
    deadline = asyncio.get_event_loop().time() + timeout
    while asyncio.get_event_loop().time() < deadline:
        if predicate():
            return True
        await asyncio.sleep(interval)
    return False


def fake_heartbeat(node_id, port=1, digest=None, workers=2):
    return {
        "id": node_id,
        "host": "127.0.0.1",
        "port": port,
        "workers": workers,
        "in_flight": 0,
        "queue_depth": 0,
        "digest": digest if digest is not None else code_digest()[:16],
        "pid": os.getpid(),
    }


RUN_SPEC = {"kind": "run", "spec": {"uid": UID}, "client": "t"}


class TestCoordinator:
    def test_heartbeat_registry_and_reaping(self, tmp_path):
        async def scenario():
            async with running_coordinator(tmp_path) as coord:
                status, payload = await http(
                    coord, "POST", "/nodes/heartbeat", fake_heartbeat("w1")
                )
                assert status == 200 and payload["known_nodes"] == 1
                status, listing = await http(coord, "GET", "/nodes")
                assert [n["id"] for n in listing["nodes"]] == ["w1"]
                assert listing["nodes"][0]["state"] == "live"
                assert coord._dispatch_capacity() == coord.config.workers + 2
                # Malformed heartbeat: rejected, not crashed.
                status, _ = await http(
                    coord, "POST", "/nodes/heartbeat", {"host": "x"}
                )
                assert status == 400
                # Stop beating: the reaper expires the node.
                assert await wait_for(lambda: "w1" not in coord.nodes)
                assert "w1" not in coord.ring
                assert coord.metrics.counters["node_deaths"] == 1

        asyncio.run(scenario())

    def test_zero_nodes_degrades_to_local(self, tmp_path):
        async def scenario():
            pool = StubPool()
            async with running_coordinator(tmp_path, pool=pool) as coord:
                status, payload = await http(coord, "POST", "/jobs", RUN_SPEC)
                assert status in (200, 201)
                job = await wait_state(coord, payload["job"]["id"], "done")
                assert job.exit_code == 0
                assert coord.metrics.counters["local_fallback"] == 1
                assert pool.executed  # ran on the coordinator's own pool

        asyncio.run(scenario())

    def test_digest_mismatch_gates_dispatch(self, tmp_path):
        async def scenario():
            async with running_coordinator(tmp_path) as coord:
                await http(
                    coord, "POST", "/nodes/heartbeat",
                    fake_heartbeat("stale-node", digest="f" * 16),
                )
                assert "stale-node" in coord.nodes
                assert not coord._candidates("any-key", set())
                status, payload = await http(coord, "POST", "/jobs", RUN_SPEC)
                await wait_state(coord, payload["job"]["id"], "done")
                assert coord.metrics.counters["local_fallback"] == 1
                assert coord.metrics.counters["remote_dispatch"] == 0

        asyncio.run(scenario())

    def test_remote_dispatch_to_live_worker(self, tmp_path):
        async def scenario():
            coord_pool, node_pool = StubPool(), StubPool()
            async with running_coordinator(tmp_path, pool=coord_pool) as coord:
                async with running_node(
                    tmp_path, "w1", coord, pool=node_pool
                ) as node:
                    assert await wait_for(lambda: "w1" in coord.nodes)
                    status, payload = await http(
                        coord, "POST", "/jobs", RUN_SPEC
                    )
                    job = await wait_state(coord, payload["job"]["id"], "done")
                    assert job.exit_code == 0
                    assert coord.metrics.counters["remote_dispatch"] == 1
                    assert coord.metrics.counters["local_fallback"] == 0
                    assert node_pool.executed and not coord_pool.executed
                    # The mirrored result records which node ran it.
                    result = coord.journal.load_result(job.key)
                    assert result["node"] == "w1"
                    assert node.metrics.counters["heartbeats"] >= 1
                    # Coordinator's own /result serves the mirror.
                    status, res = await http(
                        coord, "GET", f"/jobs/{job.id}/result"
                    )
                    assert status == 200
                    assert res["result"]["node"] == "w1"

        asyncio.run(scenario())

    def test_dead_node_fails_over_to_local(self, tmp_path):
        async def scenario():
            pool = StubPool()
            async with running_coordinator(tmp_path, pool=pool) as coord:
                # A node that registered and then vanished: its port is
                # closed, so dispatch gets Unreachable and falls back.
                await http(
                    coord, "POST", "/nodes/heartbeat",
                    fake_heartbeat("ghost", port=1),
                )
                status, payload = await http(coord, "POST", "/jobs", RUN_SPEC)
                job = await wait_state(coord, payload["job"]["id"], "done")
                assert job.exit_code == 0
                assert coord.metrics.counters["local_fallback"] == 1
                assert pool.executed

        asyncio.run(scenario())


class TestLeaseFailover:
    def lease_for(self, coord):
        spec = campaign_spec(count=4, shard_size=2)
        return plan_leases(spec, str(coord.store_dir))[0]

    def test_precompleted_lease_short_circuits(self, tmp_path):
        async def scenario():
            async with running_coordinator(tmp_path) as coord:
                lease = self.lease_for(coord)
                Path(lease["manifest"]).write_text(
                    json.dumps({"spec": {}, "shards": {"0": []}})
                )
                assert await coord._run_lease(lease) is True
                # No nodes were consulted, no counters moved.
                assert coord.metrics.counters["lease_steals"] == 0
                assert coord.metrics.counters["lease_redispatch"] == 0

        asyncio.run(scenario())

    def test_slow_live_node_counts_as_steal(self, tmp_path):
        async def scenario():
            async with running_coordinator(tmp_path) as coord:
                for name in ("w1", "w2"):
                    coord._register_heartbeat(fake_heartbeat(name))

                async def never_lands(node, spec, timeout, deadline=None,
                                      done_probe=None):
                    return None  # deadline expired, node still alive

                coord._remote_job = never_lands
                assert await coord._run_lease(self.lease_for(coord)) is False
                assert coord.metrics.counters["lease_steals"] == 2
                assert coord.metrics.counters["lease_redispatch"] == 0

        asyncio.run(scenario())

    def test_node_death_counts_as_redispatch(self, tmp_path):
        async def scenario():
            async with running_coordinator(tmp_path) as coord:
                coord._register_heartbeat(fake_heartbeat("w1"))

                async def dies_mid_lease(node, spec, timeout, deadline=None,
                                         done_probe=None):
                    del coord.nodes[node.id]
                    coord.ring.remove(node.id)
                    return None

                coord._remote_job = dies_mid_lease
                assert await coord._run_lease(self.lease_for(coord)) is False
                assert coord.metrics.counters["lease_redispatch"] == 1
                assert coord.metrics.counters["lease_steals"] == 0

        asyncio.run(scenario())

    def test_out_of_band_completion_wins(self, tmp_path):
        """A lease whose manifest lands while some node is still
        grinding (the work-stealing race) completes via the store."""

        async def scenario():
            async with running_coordinator(tmp_path) as coord:
                coord._register_heartbeat(fake_heartbeat("w1"))
                lease = self.lease_for(coord)

                async def slow_node(node, spec, timeout, deadline=None,
                                    done_probe=None):
                    # Another worker finishes the lease behind our back.
                    Path(lease["manifest"]).write_text(
                        json.dumps({"spec": {}, "shards": {"0": []}})
                    )
                    assert done_probe is not None and done_probe()
                    return {}

                coord._remote_job = slow_node
                assert await coord._run_lease(lease) is True
                assert coord.metrics.counters["lease_redispatch"] == 0

        asyncio.run(scenario())

    def test_campaign_completes_when_leases_never_land(self, tmp_path):
        """Nodes accept leases but their manifests never appear (the
        worst straggler case): the local finalize pass still computes
        the campaign, so the job finishes instead of hanging."""

        async def scenario():
            pool = StubPool()
            async with running_coordinator(tmp_path, pool=pool) as coord:
                async with running_node(tmp_path, "w1", coord) as _node:
                    assert await wait_for(lambda: "w1" in coord.nodes)
                    spec = {
                        "kind": "inject",
                        "spec": {"uid": UID, "count": 4, "shard_size": 2},
                        "client": "t",
                    }
                    status, payload = await http(coord, "POST", "/jobs", spec)
                    job = await wait_state(
                        coord, payload["job"]["id"], "done", timeout=10.0
                    )
                    assert job.exit_code == 0
                    assert pool.executed  # finalize ran locally

        asyncio.run(scenario())


# -- fabric metrics (locked names) -------------------------------------------


COORDINATOR_FABRIC_KEYS = {
    "role",
    "nodes",
    "live_nodes",
    "nodes_joined",
    "node_deaths",
    "remote_dispatch",
    "lease_redispatch",
    "lease_steals",
    "local_fallback",
    "transport_retries",
    "stale_endpoint_replaced",
}

NODE_ENTRY_KEYS = {
    "id", "host", "port", "workers", "in_flight", "queue_depth",
    "digest", "pid", "age_s", "state",
}

WORKER_FABRIC_KEYS = {"role", "node_id", "heartbeats", "heartbeat_failures"}


class TestFabricMetrics:
    """Dashboards and the chaos harness key on these exact names —
    renaming any of them is a breaking change."""

    def test_coordinator_metrics_shape(self, tmp_path):
        async def scenario():
            async with running_coordinator(tmp_path) as coord:
                coord._register_heartbeat(fake_heartbeat("w1"))
                status, snap = await http(coord, "GET", "/metrics")
                assert status == 200
                fabric = snap["fabric"]
                assert set(fabric) == COORDINATOR_FABRIC_KEYS
                assert fabric["role"] == "coordinator"
                assert fabric["live_nodes"] == 1
                assert set(fabric["nodes"]) == {"w1"}
                assert set(fabric["nodes"]["w1"]) == NODE_ENTRY_KEYS
                status, health = await http(coord, "GET", "/healthz")
                assert health["role"] == "coordinator"

        asyncio.run(scenario())

    def test_worker_metrics_shape(self, tmp_path):
        async def scenario():
            async with running_coordinator(tmp_path) as coord:
                async with running_node(tmp_path, "w1", coord) as node:
                    status, snap = await http(node, "GET", "/metrics")
                    fabric = snap["fabric"]
                    assert set(fabric) == WORKER_FABRIC_KEYS
                    assert fabric["role"] == "worker"
                    assert fabric["node_id"] == "w1"
                    status, health = await http(node, "GET", "/healthz")
                    assert health["role"] == "worker"

        asyncio.run(scenario())

    def test_local_service_has_no_fabric_section(self, tmp_path):
        async def scenario():
            config = ServiceConfig(
                journal_dir=tmp_path / "journal",
                install_signal_handlers=False,
                pool_factory=lambda workers: StubPool(workers),
            )
            service = JobService(config)
            await service.start()
            try:
                status, snap = await http(service, "GET", "/metrics")
                assert "fabric" not in snap
                status, health = await http(service, "GET", "/healthz")
                assert health["role"] == "local"
            finally:
                service.begin_drain()
                await asyncio.wait_for(service._stopped.wait(), 5.0)
                await service._shutdown()

        asyncio.run(scenario())


# -- stale endpoint takeover -------------------------------------------------


class TestStaleEndpoint:
    def _dead_pid(self):
        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()
        return proc.pid

    def test_successor_replaces_stale_endpoint(self, tmp_path):
        async def scenario():
            root = tmp_path / "journal"
            Journal(root).write_endpoint(
                "127.0.0.1", 59999, pid=self._dead_pid()
            )
            config = ServiceConfig(
                journal_dir=root,
                install_signal_handlers=False,
                pool_factory=lambda workers: StubPool(workers),
            )
            service = JobService(config)
            await service.start()
            try:
                assert (
                    service.metrics.counters["stale_endpoint_replaced"] == 1
                )
                journal = Journal(root)
                assert journal.endpoint_status() == "live"
                assert journal.read_endpoint() == service.address
            finally:
                service.begin_drain()
                await asyncio.wait_for(service._stopped.wait(), 5.0)
                await service._shutdown()

        asyncio.run(scenario())

    def test_refuses_to_usurp_live_server(self, tmp_path):
        async def scenario():
            root = tmp_path / "journal"
            # A *live* foreign PID owns the endpoint (use our own parent).
            Journal(root).write_endpoint(
                "127.0.0.1", 59999, pid=os.getppid()
            )
            service = JobService(
                ServiceConfig(
                    journal_dir=root,
                    install_signal_handlers=False,
                    pool_factory=lambda workers: StubPool(workers),
                )
            )
            with pytest.raises(RuntimeError, match="already served"):
                await service.start()

        asyncio.run(scenario())

    def test_client_reports_stale_endpoint(self, tmp_path):
        root = tmp_path / "journal"
        Journal(root).write_endpoint("127.0.0.1", 59999, pid=self._dead_pid())
        with pytest.raises(StaleEndpointError, match="stale endpoint"):
            resolve_endpoint(journal_dir=str(root))

    def test_absent_endpoint_still_plain_error(self, tmp_path):
        with pytest.raises(ValueError, match="no service endpoint"):
            resolve_endpoint(journal_dir=str(tmp_path / "nowhere"))
