"""Unit tests for the shared backoff policy: curve shape, jitter
bounds, attempt/deadline budgets, and the retry_call driver."""

from __future__ import annotations

import random

import pytest

from repro.service.backoff import Backoff, BackoffPolicy, retry_call


class TestPolicy:
    def test_curve_grows_and_caps(self):
        policy = BackoffPolicy(base=0.5, factor=2.0, cap=3.0, jitter=0.0)
        assert [policy.raw_delay(a) for a in (1, 2, 3, 4, 5)] == [
            0.5, 1.0, 2.0, 3.0, 3.0,
        ]

    def test_jitter_symmetric_and_bounded(self):
        policy = BackoffPolicy(base=1.0, factor=1.0, cap=10.0, jitter=0.25)
        rng = random.Random(42)
        delays = [policy.delay(1, rng) for _ in range(500)]
        assert all(0.75 <= d <= 1.25 for d in delays)
        assert min(delays) < 0.9 and max(delays) > 1.1  # actually varies

    def test_zero_jitter_is_deterministic(self):
        policy = BackoffPolicy(base=1.0, jitter=0.0)
        assert policy.delay(2, random.Random(1)) == policy.raw_delay(2)

    def test_validation(self):
        with pytest.raises(ValueError):
            BackoffPolicy(base=-1.0)
        with pytest.raises(ValueError):
            BackoffPolicy(factor=0.5)
        with pytest.raises(ValueError):
            BackoffPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            BackoffPolicy().raw_delay(0)


class TestSchedule:
    def test_max_attempts_budget(self):
        policy = BackoffPolicy(base=0.01, jitter=0.0, max_attempts=3)
        schedule = Backoff(policy)
        granted = [schedule.next_delay() for _ in range(5)]
        assert all(d is not None for d in granted[:3])
        assert granted[3] is None and granted[4] is None

    def test_deadline_budget_uses_injected_clock(self):
        now = [0.0]
        policy = BackoffPolicy(
            base=1.0, factor=1.0, cap=10.0, jitter=0.0, deadline=2.5
        )
        schedule = Backoff(policy, clock=lambda: now[0])
        assert schedule.next_delay() == 1.0
        now[0] = 1.0
        assert schedule.next_delay() == 1.0
        now[0] = 2.0  # next 1.0s sleep would land at 3.0 > 2.5
        assert schedule.next_delay() is None


class TestRetryCall:
    def test_retries_then_succeeds(self):
        calls = []
        sleeps = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("transient")
            return "ok"

        result = retry_call(
            flaky,
            BackoffPolicy(base=0.1, jitter=0.0, max_attempts=5),
            sleep=sleeps.append,
        )
        assert result == "ok"
        assert len(calls) == 3
        assert sleeps == [0.1, 0.2]

    def test_budget_exhaustion_raises_last_error(self):
        def always():
            raise OSError("still down")

        with pytest.raises(OSError, match="still down"):
            retry_call(
                always,
                BackoffPolicy(base=0.0, jitter=0.0, max_attempts=2),
                sleep=lambda _d: None,
            )

    def test_non_retryable_propagates_immediately(self):
        calls = []

        def boom():
            calls.append(1)
            raise ValueError("logic bug")

        with pytest.raises(ValueError):
            retry_call(
                boom,
                BackoffPolicy(max_attempts=5),
                retry_on=(OSError,),
                sleep=lambda _d: None,
            )
        assert len(calls) == 1

    def test_on_retry_hook_sees_attempts(self):
        seen = []

        def flaky():
            if len(seen) < 2:
                raise OSError("x")
            return 7

        retry_call(
            flaky,
            BackoffPolicy(base=0.0, jitter=0.0, max_attempts=5),
            sleep=lambda _d: None,
            on_retry=lambda attempt, exc: seen.append(attempt),
        )
        assert seen == [1, 2]
