"""Suite-wide pruning soundness invariants.

Regression coverage for the self-reference cycle found by the
recovery-cost analysis: a pruned definition must never reference its own
destination, and recovery-expression chains must be acyclic on every
compiled benchmark.
"""

import pytest

from repro.compiler.config import turnpike_config
from repro.compiler.pipeline import compile_program
from repro.compiler.pruning import PRUNED_ANNOTATION
from repro.workloads.suites import all_profiles, load_workload

SAMPLE = [
    "CPU2006.bzip2",
    "CPU2006.gcc",
    "CPU2017.exchange2",
    "CPU2017.deepsjeng",
    "SPLASH3.radix",
    "SPLASH3.water-sp",
]


@pytest.mark.parametrize("uid", SAMPLE)
def test_no_self_referential_recovery_exprs(uid):
    wl = load_workload(uid)
    compiled = compile_program(wl.program, turnpike_config())
    for instr in compiled.program.instructions():
        expr = instr.annotations.get(PRUNED_ANNOTATION)
        if expr is None:
            continue
        assert instr.dest not in expr.referenced_registers(), (
            f"{uid}: pruned def {instr!r} references its own destination"
        )


@pytest.mark.parametrize("uid", SAMPLE)
def test_recovery_expr_chains_acyclic(uid):
    """Static over-approximation of the runtime binding graph: an edge
    r -> a exists when some pruned definition of r references a. Under
    the pruning conditions this graph restricted to simultaneously-
    consultable bindings is acyclic; here we check the strongest easily
    checkable property — no self-loop, and every referenced operand is
    reconstructible-or-checkpointed somewhere."""
    wl = load_workload(uid)
    compiled = compile_program(wl.program, turnpike_config())
    checkpointed = {
        i.srcs[0] for i in compiled.program.instructions() if i.is_checkpoint
    }
    annotated = {
        i.dest
        for i in compiled.program.instructions()
        if PRUNED_ANNOTATION in i.annotations
    }
    available = checkpointed | annotated | set(compiled.program.live_in)
    sp = compiled.program.register_file.stack_pointer
    zero = compiled.program.register_file.zero
    available |= {sp, zero}
    for instr in compiled.program.instructions():
        expr = instr.annotations.get(PRUNED_ANNOTATION)
        if expr is None:
            continue
        for reg in expr.referenced_registers():
            assert reg != instr.dest
            # Machine pre-verifies every register's initial binding, so a
            # reference to an otherwise-unbound register is only legal if
            # that register is genuinely never defined before this point
            # on any path — conservatively require global availability or
            # zero definitions at all.
            defined_somewhere = any(
                other.dest == reg
                for other in compiled.program.instructions()
            )
            assert (reg in available) or not defined_somewhere, (
                f"{uid}: {instr!r} references unbound {reg}"
            )


def test_every_benchmark_compiles_with_pruning():
    """No benchmark trips an assertion anywhere in the Turnpike pipeline."""
    for prof in all_profiles():
        wl = load_workload(prof.uid)
        compiled = compile_program(wl.program, turnpike_config())
        assert compiled.recovery is not None
