"""Tests for the program printer and the command-line interface."""

import pytest

from repro.isa.pretty import format_instruction, format_program, summarize_program
from repro.__main__ import main as cli_main

from helpers import build_sum_loop


class TestPretty:
    def test_format_program_contains_blocks(self, sum_loop):
        text = format_program(sum_loop)
        assert "entry:" in text and "loop:" in text and "done:" in text

    def test_format_program_live_in(self, diamond):
        text = format_program(diamond)
        assert "live-in" in text

    def test_region_annotations_rendered(self):
        from repro.compiler.regions import partition_regions

        prog = build_sum_loop(trip=3)
        partition_regions(prog, max_stores=2)
        text = format_program(prog)
        assert "region boundary" in text
        assert "; R" in text

    def test_format_instruction_store_kind(self):
        from repro.isa import instructions as ins
        from repro.isa.registers import Reg

        st = ins.store(Reg.phys(1), Reg.phys(2), kind=ins.StoreKind.SPILL)
        st.region_id = 5
        text = format_instruction(st)
        assert "spill" in text and "R5" in text

    def test_summarize_counts(self, sum_loop):
        summary = summarize_program(sum_loop)
        assert summary["instructions"] == sum_loop.num_instructions
        assert summary["stores"] == 2
        assert summary["branches"] == 1
        assert summary["bytes"] == sum_loop.static_size_bytes


class TestCLI:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "CPU2006.mcf" in out and "SPLASH3.radix" in out

    def test_run_turnpike(self, capsys):
        assert cli_main(["run", "CPU2006.xalan", "--wcdl", "10"]) == 0
        out = capsys.readouterr().out
        assert "normalized time" in out
        assert "WAR-free released" in out

    def test_run_baseline_scheme(self, capsys):
        assert cli_main(["run", "CPU2006.xalan", "--scheme", "baseline"]) == 0
        out = capsys.readouterr().out
        assert "normalized time:  1.000" in out

    def test_inject(self, capsys):
        assert (
            cli_main(["inject", "CPU2006.bzip2", "--count", "4", "--seed", "3"])
            == 0
        )
        out = capsys.readouterr().out
        assert "turnstile" in out and "unsafe" in out

    def test_sensors(self, capsys):
        assert cli_main(["sensors"]) == 0
        out = capsys.readouterr().out
        assert "sensors" in out and "%" in out

    def test_figure_table1(self, capsys):
        assert cli_main(["figure", "table1"]) == 0
        out = capsys.readouterr().out
        assert "621.28" in out

    def test_figure_fig18(self, capsys):
        assert cli_main(["figure", "fig18"]) == 0
        out = capsys.readouterr().out
        assert "GHz" in out

    def test_figure_unknown(self, capsys):
        assert cli_main(["figure", "fig99"]) == 2

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            cli_main(["frobnicate"])
