"""Parallel, resumable differential campaigns.

The determinism contract under test: every injection derives from
``(seed, index)`` alone, shards partition the index space statically,
and aggregation sorts by index — so worker count, shard interleaving,
and kill/resume cycles must all be invisible in the aggregate JSON
(byte-identical output).
"""

import json

import pytest

from repro.__main__ import main as cli_main
from repro.faults.campaign import (
    AccelOptions,
    CampaignRunner,
    CampaignSpec,
    format_differential_report,
)

SPEC = CampaignSpec(
    uid="CPU2006.bzip2",
    wcdl=10,
    count=9,
    seed=77,
    targets=("register", "clq", "coloring"),
    shard_size=3,
)


@pytest.fixture(scope="module")
def report():
    """One serial, manifest-less run of the reference campaign."""
    return CampaignRunner(SPEC).run()


class TestDeterminism:
    def test_parallel_run_is_byte_identical_to_serial(self, report):
        parallel = CampaignRunner(SPEC).run(workers=2)
        assert parallel.to_json() == report.to_json()

    def test_resumed_run_is_byte_identical(self, report, tmp_path):
        manifest = tmp_path / "campaign.json"
        first = CampaignRunner(SPEC, manifest_path=manifest).run()
        assert first.to_json() == report.to_json()

        # Simulate a kill after some shards: drop one finished shard
        # from the manifest, then resume.
        state = json.loads(manifest.read_text())
        assert set(state["shards"]) == {"0", "1", "2"}
        del state["shards"]["1"]
        manifest.write_text(json.dumps(state))

        resumed = CampaignRunner(SPEC, manifest_path=manifest).run(resume=True)
        assert resumed.to_json() == report.to_json()

    def test_resume_refuses_mismatched_spec(self, tmp_path):
        manifest = tmp_path / "campaign.json"
        other = CampaignSpec(
            uid=SPEC.uid,
            wcdl=SPEC.wcdl,
            count=SPEC.count,
            seed=SPEC.seed + 1,
            targets=SPEC.targets,
            shard_size=SPEC.shard_size,
        )
        manifest.write_text(json.dumps({"spec": other.to_dict(), "shards": {}}))
        with pytest.raises(ValueError, match="refusing to resume"):
            CampaignRunner(SPEC, manifest_path=manifest).run(resume=True)

    def test_progress_callback_sees_every_shard(self, tmp_path):
        calls = []
        CampaignRunner(SPEC).run(progress=lambda d, t: calls.append((d, t)))
        assert calls == [(1, 3), (2, 3), (3, 3)]


class TestAccelInvisibility:
    """Snapshot acceleration must be observationally invisible: the
    aggregate JSON may not depend on whether acceleration was on, what
    snapshot interval was used, or when the campaign was interrupted.
    (The module-scope ``report`` fixture runs with the default
    ``AccelOptions()``, i.e. acceleration ON.)"""

    def test_accel_off_is_byte_identical(self, report):
        off = CampaignRunner(SPEC, accel=AccelOptions(enabled=False)).run()
        assert off.to_json() == report.to_json()

    def test_odd_snapshot_interval_is_byte_identical(self, report):
        odd = CampaignRunner(
            SPEC, accel=AccelOptions(snapshot_interval=37)
        ).run()
        assert odd.to_json() == report.to_json()

    def test_fingerprints_only_is_byte_identical(self, report):
        # interval <= 0: convergence early-exit without fast-forward.
        fp_only = CampaignRunner(
            SPEC, accel=AccelOptions(snapshot_interval=0)
        ).run()
        assert fp_only.to_json() == report.to_json()

    def test_killed_accelerated_campaign_resumes_identically(
        self, report, tmp_path
    ):
        manifest = tmp_path / "campaign.json"
        first = CampaignRunner(SPEC, manifest_path=manifest).run()
        assert first.to_json() == report.to_json()

        state = json.loads(manifest.read_text())
        del state["shards"]["2"]
        manifest.write_text(json.dumps(state))

        # Resume with a *different* accel setting than the original run:
        # the manifest does not record acceleration (it cannot affect
        # outcomes), so this must still be byte-identical.
        resumed = CampaignRunner(
            SPEC,
            manifest_path=manifest,
            accel=AccelOptions(enabled=False),
        ).run(resume=True)
        assert resumed.to_json() == report.to_json()

    def test_tiny_step_budget_degrades_identically(self):
        # A budget below the fault-free run length means no golden record
        # can be built; acceleration must silently fall back to the
        # from-scratch path rather than crash during prewarm.
        tiny = CampaignSpec(
            uid=SPEC.uid,
            wcdl=SPEC.wcdl,
            count=3,
            seed=SPEC.seed,
            targets=("register",),
            shard_size=3,
            max_steps=50,
        )
        on = CampaignRunner(tiny).run()
        off = CampaignRunner(tiny, accel=AccelOptions(enabled=False)).run()
        assert on.to_json() == off.to_json()
        assert all(
            hist["timeout"] == 3 for hist in on.per_variant().values()
        )


class TestDifferentialResults:
    def test_turnpike_contains_every_strike(self, report):
        hist = report.per_variant()["turnpike"]
        assert hist["sdc"] == 0
        assert hist["protocol_bug"] == 0
        assert hist["timeout"] == 0

    def test_unsafe_variant_shows_figure16_sdc(self, report):
        assert report.per_variant()["unsafe"]["sdc"] > 0

    def test_divergences_isolate_the_protocol_difference(self, report):
        divergent = report.divergences()
        assert divergent, "safe and unsafe variants should diverge"
        for entry in divergent:
            kinds = set(entry["kinds"].values())
            assert len(kinds) > 1
            assert 0 <= entry["index"] < SPEC.count

    def test_per_target_covers_requested_structures(self, report):
        per_target = report.per_target()
        assert set(per_target) == set(SPEC.targets)
        for variant_hists in per_target.values():
            assert set(variant_hists) == set(SPEC.variants)
        total = sum(
            sum(hist.values())
            for variant_hists in per_target.values()
            for hist in variant_hists.values()
        )
        assert total == SPEC.count * len(SPEC.variants)

    def test_format_report_mentions_variants_and_structures(self, report):
        text = format_differential_report(report)
        for variant in SPEC.variants:
            assert variant in text
        assert "per-structure" in text
        assert "divergent" in text


class TestSpecValidation:
    def test_unknown_target_rejected(self):
        with pytest.raises(ValueError):
            CampaignSpec(uid="CPU2006.bzip2", targets=("flux_capacitor",))

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError, match="variant"):
            CampaignSpec(uid="CPU2006.bzip2", variants=("turnpikee",))

    def test_degenerate_counts_rejected(self):
        with pytest.raises(ValueError):
            CampaignSpec(uid="CPU2006.bzip2", count=0)
        with pytest.raises(ValueError):
            CampaignSpec(uid="CPU2006.bzip2", shard_size=0)

    def test_spec_round_trips_through_dict(self):
        assert CampaignSpec.from_dict(SPEC.to_dict()) == SPEC

    def test_shards_partition_the_index_space(self):
        shards = SPEC.shards()
        flat = [i for shard in shards for i in shard]
        assert flat == list(range(SPEC.count))
        assert all(len(shard) <= SPEC.shard_size for shard in shards)


class TestInjectCLI:
    def test_inject_with_manifest_and_export(self, tmp_path, capsys):
        manifest = tmp_path / "m.json"
        export = tmp_path / "agg.json"
        rc = cli_main(
            [
                "inject", "CPU2006.bzip2",
                "--count", "3", "--seed", "7",
                "--targets", "register",
                "--variants", "turnpike,unsafe",
                "--shard-size", "2",
                "--manifest", str(manifest),
                "--export", str(export),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "turnpike" in out and "unsafe" in out
        aggregate = json.loads(export.read_text())
        assert aggregate["spec"]["count"] == 3
        assert set(aggregate["per_variant"]) == {"turnpike", "unsafe"}
        # Re-running with --resume finds everything done in the manifest.
        rc = cli_main(
            [
                "inject", "CPU2006.bzip2",
                "--count", "3", "--seed", "7",
                "--targets", "register",
                "--variants", "turnpike,unsafe",
                "--shard-size", "2",
                "--manifest", str(manifest),
                "--resume",
                "--export", str(export),
            ]
        )
        assert rc == 0
        assert json.loads(export.read_text()) == aggregate

    def test_resume_without_manifest_is_an_error(self):
        assert cli_main(["inject", "CPU2006.bzip2", "--resume"]) == 2

    def test_unknown_target_is_an_error(self):
        assert cli_main(["inject", "--targets", "flux_capacitor"]) == 2
