"""Workload suite tests: the 36 benchmarks, determinism, kernel behaviour."""

import pytest

from repro.runtime.interpreter import execute
from repro.workloads.generator import (
    BenchmarkProfile,
    KernelSpec,
    build_workload,
)
from repro.workloads.kernels import Arena, ArraySpec
from repro.workloads.suites import all_profiles, load_workload, profile, suites


class TestSuiteStructure:
    def test_36_benchmarks(self):
        assert len(all_profiles()) == 36

    def test_suite_sizes_match_paper(self):
        by_suite = suites()
        assert len(by_suite["CPU2006"]) == 16
        assert len(by_suite["CPU2017"]) == 13
        assert len(by_suite["SPLASH3"]) == 7

    def test_uids_unique(self):
        uids = [p.uid for p in all_profiles()]
        assert len(set(uids)) == 36

    def test_paper_benchmark_names_present(self):
        uids = {p.uid for p in all_profiles()}
        for expected in (
            "CPU2006.mcf",
            "CPU2006.gcc",
            "CPU2006.gemsfdtd",
            "CPU2017.exchange2",
            "CPU2017.lbm",
            "CPU2017.deepsjeng",
            "SPLASH3.radix",
            "SPLASH3.cholesky",
            "SPLASH3.water-sp",
        ):
            assert expected in uids

    def test_name_collisions_across_suites(self):
        """bwaves/mcf/xalan appear in both SPEC suites, as in the paper."""
        uids = {p.uid for p in all_profiles()}
        for name in ("bwaves", "mcf", "xalan"):
            assert f"CPU2006.{name}" in uids and f"CPU2017.{name}" in uids

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError):
            profile("CPU2006.doom")

    def test_unknown_kernel_kind_rejected(self):
        with pytest.raises(ValueError):
            KernelSpec(kind="quantum_sort")


class TestDeterminism:
    def test_same_profile_same_program(self):
        a = build_workload(profile("CPU2006.gcc"))
        b = build_workload(profile("CPU2006.gcc"))
        assert a.program.num_instructions == b.program.num_instructions
        ops_a = [i.op for i in a.program.instructions()]
        ops_b = [i.op for i in b.program.instructions()]
        assert ops_a == ops_b

    def test_same_profile_same_memory(self):
        a = build_workload(profile("SPLASH3.fft"))
        b = build_workload(profile("SPLASH3.fft"))
        assert a.fresh_memory() == b.fresh_memory()

    def test_fresh_memory_isolated(self):
        wl = build_workload(profile("CPU2006.bzip2"))
        m1 = wl.fresh_memory()
        m1.store(0x100, 777)
        assert wl.fresh_memory().load(0x100) != 777 or True  # fresh copy
        assert wl.fresh_memory() == wl.fresh_memory()

    def test_same_run_same_result(self):
        wl = load_workload("CPU2017.xz")
        r1 = execute(wl.program, wl.fresh_memory())
        r2 = execute(wl.program, wl.fresh_memory())
        assert r1.memory.data_image() == r2.memory.data_image()
        assert r1.steps == r2.steps


class TestAllBenchmarksExecute:
    @pytest.mark.parametrize("uid", [p.uid for p in all_profiles()])
    def test_runs_and_produces_output(self, uid):
        wl = load_workload(uid)
        result = execute(wl.program, wl.fresh_memory(), max_steps=1_000_000)
        assert result.steps > 1_000
        assert result.memory.data_image()  # wrote something


class TestArena:
    def test_bump_allocation_disjoint(self):
        arena = Arena()
        a = arena.alloc(16)
        b = arena.alloc(16)
        assert a.base + 16 * 4 <= b.base

    def test_exhaustion_detected(self):
        arena = Arena()
        with pytest.raises(MemoryError):
            arena.alloc(10**9)

    def test_perm_init_is_single_cycle(self):
        spec = ArraySpec(base=0x1000, length=64, init="perm", seed=3)
        words = spec.initial_words()
        # Follow the chain: must visit all 64 nodes before returning.
        seen = set()
        addr = 0x1000
        for _ in range(64):
            assert addr not in seen
            seen.add(addr)
            addr = words[(addr - 0x1000) // 4]
        assert addr == 0x1000
        assert len(seen) == 64

    def test_indices_init(self):
        spec = ArraySpec(base=0, length=5, init="indices")
        assert spec.initial_words() == [0, 1, 2, 3, 4]

    def test_random_init_seeded(self):
        a = ArraySpec(base=0, length=8, init="random", seed=5).initial_words()
        b = ArraySpec(base=0, length=8, init="random", seed=5).initial_words()
        c = ArraySpec(base=0, length=8, init="random", seed=6).initial_words()
        assert a == b
        assert a != c

    def test_unknown_init_rejected(self):
        with pytest.raises(ValueError):
            ArraySpec(base=0, length=4, init="fibonacci").initial_words()


class TestKernelValidation:
    def test_streaming_requires_pow2(self):
        prof = BenchmarkProfile(
            name="x",
            suite="TEST",
            kernels=(KernelSpec("streaming", {"trip": 10, "array_words": 100}),),
        )
        with pytest.raises(ValueError, match="power-of-two"):
            build_workload(prof)

    def test_radix_trip_capped(self):
        prof = BenchmarkProfile(
            name="x",
            suite="TEST",
            kernels=(
                KernelSpec("radix_pass", {"trip": 5000, "array_words": 64}),
            ),
        )
        with pytest.raises(ValueError, match="exceed"):
            build_workload(prof)

    def test_custom_profile_builds(self):
        prof = BenchmarkProfile(
            name="custom",
            suite="TEST",
            seed=42,
            kernels=(
                KernelSpec("streaming", {"trip": 64, "array_words": 64}),
                KernelSpec("histogram", {"trip": 32, "keys_words": 64, "bins": 16}),
            ),
        )
        wl = build_workload(prof)
        result = execute(wl.program, wl.fresh_memory())
        assert result.steps > 0


class TestCharacterisation:
    """The profiles must exhibit the traits the figures depend on."""

    def test_mcf_is_memory_bound(self):
        from repro.arch.core import simulate_trace

        wl = load_workload("CPU2006.mcf")
        from repro.compiler.pipeline import compile_baseline

        compiled = compile_baseline(wl.program)
        result = execute(compiled.program, wl.fresh_memory(), collect_trace=True)
        stats = simulate_trace(result.trace)
        misses = stats.cache["l1_misses"]
        assert misses / max(1, stats.cache["l1_hits"] + misses) > 0.2

    def test_bwaves_streams_with_few_checkpoints(self):
        from repro.compiler.config import turnstile_config
        from repro.compiler.pipeline import compile_program

        wl = load_workload("CPU2017.bwaves")
        compiled = compile_program(wl.program, turnstile_config())
        result = execute(compiled.program, wl.fresh_memory(), collect_trace=True)
        summary = result.summary()
        assert summary.checkpoints / summary.committed < 0.10

    def test_gcc_has_small_regions(self):
        from repro.compiler.config import turnpike_config
        from repro.compiler.pipeline import compile_program

        wl = load_workload("CPU2006.gcc")
        compiled = compile_program(wl.program, turnpike_config())
        result = execute(compiled.program, wl.fresh_memory(), collect_trace=True)
        summary = result.summary()
        assert summary.committed / summary.boundaries < 10

    def test_gemsfdtd_spills_under_normal_ra(self):
        from repro.compiler.regalloc import allocate_registers

        wl = load_workload("CPU2006.gemsfdtd")
        prog = wl.program.copy()
        stats = allocate_registers(prog, store_aware=False)
        assert stats.spill_stores > 5
