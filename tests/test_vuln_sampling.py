"""Stratified importance-sampling tests: interval arithmetic, stratum
cell indexing, strata/breakdown agreement, sampled campaign determinism,
enumerated-campaign byte-stability, the loud masked-misclassification
contract, and the sampled-vs-exhaustive validator.
"""

from __future__ import annotations

import functools

import pytest

from repro.compiler.config import turnpike_config
from repro.compiler.pipeline import compile_program
from repro.faults.campaign import CampaignRunner, CampaignSpec, execute_campaign
from repro.faults.sampling import (
    MaskedMisclassification,
    SamplingOptions,
    Stratum,
    build_strata,
    sample_stratum,
    validate_benchmark,
    wilson,
    z_score,
)
from repro.runtime.memory import Memory
from repro.verify.vuln import MASKED, UNKNOWN, VULNERABLE, build_map

from helpers import build_sum_loop


@functools.lru_cache(maxsize=1)
def _sum_loop_vmap():
    compiled = compile_program(build_sum_loop(), turnpike_config())
    return build_map(compiled, Memory, uid="sum_loop")


class TestIntervalArithmetic:
    def test_z_score_table_values(self):
        assert z_score(0.95) == pytest.approx(1.959963984540054)
        assert z_score(0.99) == pytest.approx(2.5758293035489004)

    def test_z_score_fallback_quantile(self):
        # 0.975 two-sided -> the 0.9875 quantile, not in the table.
        assert z_score(0.975) == pytest.approx(2.2414, abs=1e-3)

    def test_z_score_rejects_degenerate_levels(self):
        for bad in (0.0, 1.0, -0.5):
            with pytest.raises(ValueError):
                z_score(bad)

    def test_wilson_no_information_is_whole_interval(self):
        assert wilson(0, 0, 1.96) == (0.5, 0.5)

    def test_wilson_tightens_with_samples(self):
        _, h10 = wilson(1, 10, 1.96)
        _, h100 = wilson(10, 100, 1.96)
        assert h100 < h10

    def test_wilson_zero_failures_lower_bound_is_zero(self):
        center, half = wilson(0, 50, 1.96)
        assert center == pytest.approx(half)
        assert center - half == pytest.approx(0.0, abs=1e-12)


class TestSamplingOptions:
    def test_round_trip(self):
        opts = SamplingOptions(enabled=True, ci_width=0.02, token_rate=4)
        assert SamplingOptions.from_dict(opts.to_dict()) == opts

    def test_validation(self):
        with pytest.raises(ValueError):
            SamplingOptions(ci_width=0.0)
        with pytest.raises(ValueError):
            SamplingOptions(confidence=1.0)
        with pytest.raises(ValueError):
            SamplingOptions(token_rate=0)
        with pytest.raises(ValueError):
            SamplingOptions(batch=0)


class TestStratum:
    def test_flat_index_maps_to_cells(self):
        s = Stratum("register", VULNERABLE)
        s.add(4, 2, 10, 0b101)  # ticks 10-11, bits {0, 2} of r2
        s.add(2, -1, 50, 0b11)  # structure entries 0-1 at tick 50
        assert s.size == 6
        assert s.cell(0) == (2, 0, 10)
        assert s.cell(1) == (2, 2, 10)
        assert s.cell(2) == (2, 0, 11)
        assert s.cell(3) == (2, 2, 11)
        assert s.cell(4) == (None, 0, 50)
        assert s.cell(5) == (None, 1, 50)
        with pytest.raises(IndexError):
            s.cell(6)


class TestBuildStrata:
    def test_populations_match_breakdown(self):
        vmap = _sum_loop_vmap()
        per = vmap.breakdown("turnpike")
        for target in ("register", "store_buffer", "clq", "coloring"):
            strata = build_strata(vmap, "turnpike", target)
            assert strata[MASKED].size == per[target]["masked"]
            assert strata[VULNERABLE].size == per[target]["vulnerable"]
            assert strata[UNKNOWN].size == per[target]["unknown"]

    def test_every_stratum_cell_classifies_to_its_label(self):
        vmap = _sum_loop_vmap()
        for target in ("register", "store_buffer"):
            strata = build_strata(vmap, "turnpike", target)
            for label, stratum in strata.items():
                step = max(1, stratum.size // 17)
                for index in range(0, stratum.size, step):
                    reg, bit, time = stratum.cell(index)
                    assert vmap.classify(
                        target, time, bit=bit, reg=reg, variant="turnpike"
                    ) == label, (target, label, index)

    def test_unsound_variant_is_all_unknown(self):
        vmap = _sum_loop_vmap()
        strata = build_strata(vmap, "unsafe", "register")
        assert strata[MASKED].size == 0
        assert strata[VULNERABLE].size == 0
        assert strata[UNKNOWN].size > 0


class TestMaskedCrossCheck:
    def test_corrupting_masked_token_raises_loudly(self):
        stratum = Stratum("register", MASKED)
        stratum.add(64, 3, 1, 0xFF)
        with pytest.raises(MaskedMisclassification, match="reg=3"):
            sample_stratum(
                stratum,
                weight=1.0,
                options=SamplingOptions(enabled=True),
                z=1.96,
                rng_key="k",
                wcdl=10,
                run_cell=lambda *args: False,
            )

    def test_clean_masked_stratum_costs_only_tokens(self):
        stratum = Stratum("register", MASKED)
        stratum.add(4096, 3, 1, 0xFF)
        options = SamplingOptions(enabled=True, token_rate=5)
        estimate = sample_stratum(
            stratum,
            weight=1.0,
            options=options,
            z=1.96,
            rng_key="k",
            wcdl=10,
            run_cell=lambda *args: True,
        )
        assert estimate.injections == 5
        assert estimate.failures == 0
        assert estimate.center == 0.0
        assert estimate.half_width == 0.0


class TestSampledCampaign:
    SPEC = dict(
        uid="SPLASH3.radix",
        wcdl=10,
        count=1,
        seed=7,
        targets=("register",),
        variants=("turnpike",),
    )

    def test_deterministic_and_reports_avf_interval(self):
        spec = CampaignSpec(**self.SPEC)
        opts = SamplingOptions(enabled=True)
        report1, text1 = execute_campaign(spec, sampling=opts)
        report2, text2 = execute_campaign(spec, sampling=opts)
        assert text1 == text2
        agg = report1.aggregate()
        assert agg == report2.aggregate()
        assert report1.records == []
        per = agg["avf"]["per_variant"]["turnpike"]["register"]
        assert 0.0 <= per["ci_low"] <= per["avf"] <= per["ci_high"] <= 1.0
        assert per["strata"]["masked"]["failures"] == 0
        assert agg["avf"]["total_injections"] == per["injections"]
        assert "stratified AVF estimates" in text1

    def test_rejects_resume_and_shard_leases(self):
        spec = CampaignSpec(**self.SPEC)
        runner = CampaignRunner(spec, sampling=SamplingOptions(enabled=True))
        with pytest.raises(ValueError, match="adaptive"):
            runner.run(resume=True)
        with pytest.raises(ValueError, match="adaptive"):
            runner.run(only_shards={0})

    def test_enumerated_campaign_has_no_avf_key(self):
        # Byte-stability contract: with sampling disabled the aggregate
        # dict must not grow an "avf" key (exports stay byte-identical
        # to pre-sampling releases).
        spec = CampaignSpec(**{**self.SPEC, "count": 2})
        report, _ = execute_campaign(spec)
        assert report.avf is None
        assert "avf" not in report.aggregate()


class TestValidator:
    def test_radix_validation_passes_with_big_savings(self):
        result = validate_benchmark("SPLASH3.radix")
        assert result.ok
        assert result.masked_misclassified == 0
        assert result.covered
        # The acceptance bar: sampling spends at most 20% of the
        # exhaustive injection budget.
        assert result.sampled_injections <= result.exhaustive_injections // 5
        assert result.saved_ratio >= 0.8
        assert "PASS" in result.render_text()
        payload = result.to_dict()
        assert payload["ok"] is True
        assert payload["uid"] == "SPLASH3.radix"
