"""Runtime tests: memory model, interpreter semantics, trace format."""

import pytest

from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import Opcode
from repro.isa.registers import Reg
from repro.runtime import trace as tr
from repro.runtime.interpreter import (
    ExecutionLimitExceeded,
    execute,
)
from repro.runtime.memory import (
    DATA_BASE,
    DATA_LIMIT,
    Memory,
    STACK_BASE,
    wrap32,
)

from helpers import build_sum_loop


class TestMemory:
    def test_default_zero(self, empty_memory):
        assert empty_memory.load(0x1234) == 0

    def test_store_load_roundtrip(self, empty_memory):
        empty_memory.store(0x100, 42)
        assert empty_memory.load(0x100) == 42

    def test_values_wrap_to_32_bits(self, empty_memory):
        empty_memory.store(0x100, 1 << 40)
        assert empty_memory.load(0x100) == 0

    def test_negative_values(self, empty_memory):
        empty_memory.store(0x100, -5)
        assert empty_memory.load(0x100) == -5

    def test_bulk_helpers(self, empty_memory):
        empty_memory.write_words(0x200, [1, 2, 3])
        assert empty_memory.read_words(0x200, 3) == [1, 2, 3]

    def test_copy_is_independent(self, empty_memory):
        empty_memory.store(0x100, 1)
        clone = empty_memory.copy()
        clone.store(0x100, 2)
        assert empty_memory.load(0x100) == 1

    def test_data_image_excludes_stack(self, empty_memory):
        empty_memory.store(DATA_BASE + 4, 7)
        empty_memory.store(STACK_BASE + 8, 9)
        image = empty_memory.data_image()
        assert DATA_BASE + 4 in image
        assert STACK_BASE + 8 not in image

    def test_data_image_excludes_zeros(self, empty_memory):
        empty_memory.store(0x100, 0)
        assert empty_memory.data_image() == {}

    def test_equality_by_content(self):
        a, b = Memory(), Memory()
        a.store(0x10, 5)
        b.store(0x10, 5)
        b.store(0x20, 0)  # zero cells irrelevant
        assert a == b

    def test_wrap32(self):
        assert wrap32(2**31) == -(2**31)
        assert wrap32(-(2**31) - 1) == 2**31 - 1
        assert wrap32(0) == 0
        assert wrap32(123) == 123


class TestInterpreter:
    def test_sum_loop_result(self):
        prog = build_sum_loop(trip=10, store_base=0x400)
        result = execute(prog, Memory())
        # Final accumulator value: sum 0..9 = 45, stored at base+40.
        assert result.memory.load(0x400 + 40) == 45

    def test_partial_sums_stored(self):
        prog = build_sum_loop(trip=5, store_base=0x400)
        result = execute(prog, Memory())
        # partial sums after adding i: 0,1,3,6,10
        assert result.memory.read_words(0x400, 5) == [0, 1, 3, 6, 10]

    def test_stack_pointer_initialised(self):
        b = ProgramBuilder("sp")
        b.begin_block("entry")
        b.ret()
        prog = b.finish()
        result = execute(prog)
        sp = prog.register_file.stack_pointer
        assert result.registers[sp] == STACK_BASE

    def test_max_steps_enforced(self):
        b = ProgramBuilder("inf")
        b.begin_block("entry")
        b.jmp("entry")
        # unreachable ret to satisfy validation
        b.begin_block("end")
        b.ret()
        prog = b.finish()
        with pytest.raises(ExecutionLimitExceeded):
            execute(prog, max_steps=100)

    def test_division_semantics(self):
        b = ProgramBuilder("div")
        b.begin_block("entry")
        base = b.li(0x100)
        a = b.li(-7)
        two = b.li(2)
        q = b.div(a, two)
        r = b.rem(a, two)
        zero = b.li(0)
        qz = b.div(a, zero)
        b.store(q, base)
        b.store(r, base, offset=4)
        b.store(qz, base, offset=8)
        b.ret()
        result = execute(b.finish(), Memory())
        assert result.memory.load(0x100) == -3  # C-style truncation
        assert result.memory.load(0x104) == -1
        assert result.memory.load(0x108) == 0  # div by zero -> 0

    def test_shift_semantics(self):
        b = ProgramBuilder("sh")
        b.begin_block("entry")
        base = b.li(0x100)
        x = b.li(-8)
        s = b.shri(x, 1)  # logical shift of the 32-bit pattern
        l = b.shli(x, 1)
        b.store(s, base)
        b.store(l, base, offset=4)
        b.ret()
        result = execute(b.finish(), Memory())
        assert result.memory.load(0x100) == (0xFFFFFFF8 >> 1)
        assert result.memory.load(0x104) == -16

    def test_comparison_ops(self):
        b = ProgramBuilder("cmp")
        b.begin_block("entry")
        base = b.li(0x100)
        a = b.li(3)
        c = b.li(5)
        b.store(b.slt(a, c), base)
        b.store(b.slt(c, a), base, offset=4)
        b.store(b.seq(a, a), base, offset=8)
        b.ret()
        result = execute(b.finish(), Memory())
        assert result.memory.read_words(0x100, 3) == [1, 0, 1]

    def test_initial_registers_override(self):
        b = ProgramBuilder("init")
        b.begin_block("entry")
        x = b.live_in()
        base = b.li(0x100)
        b.store(x, base)
        b.ret()
        prog = b.finish()
        result = execute(prog, Memory(), initial_registers={x: 77})
        assert result.memory.load(0x100) == 77


class TestTrace:
    def _trace(self, prog, memory=None):
        result = execute(prog, memory or Memory(), collect_trace=True)
        return result.trace, result

    def test_trace_kinds(self):
        prog = build_sum_loop(trip=3)
        trace, _ = self._trace(prog)
        kinds = {e[0] for e in trace}
        assert tr.K_ST in kinds and tr.K_BR in kinds and tr.K_RET in kinds

    def test_store_addresses_recorded(self):
        prog = build_sum_loop(trip=3, store_base=0x400)
        trace, _ = self._trace(prog)
        store_addrs = [e[4] for e in trace if e[0] == tr.K_ST]
        assert 0x400 in store_addrs

    def test_branch_taken_flags(self):
        prog = build_sum_loop(trip=3)
        trace, _ = self._trace(prog)
        branches = [e for e in trace if e[0] == tr.K_BR and not (e[6] & 4)]
        taken = [e for e in branches if e[6] & 1]
        not_taken = [e for e in branches if not (e[6] & 1)]
        assert len(taken) == 2  # loop back edges
        assert len(not_taken) == 1  # final exit

    def test_branch_static_ids_stable(self):
        prog = build_sum_loop(trip=4)
        trace, _ = self._trace(prog)
        cond = [e for e in trace if e[0] == tr.K_BR and not (e[6] & 4)]
        assert len({e[4] for e in cond}) == 1  # one static branch

    def test_jumps_marked_unconditional(self):
        prog = build_sum_loop(trip=2)
        trace, _ = self._trace(prog)
        jumps = [e for e in trace if e[0] == tr.K_BR and (e[6] & 4)]
        assert jumps  # the entry->loop jump

    def test_summary_counts(self):
        prog = build_sum_loop(trip=5)
        trace, result = self._trace(prog)
        summary = result.summary()
        assert summary.total == len(trace)
        assert summary.regular_stores == 6  # 5 in-loop + 1 final
        assert summary.checkpoints == 0
        assert summary.committed == summary.total  # no boundaries

    def test_boundaries_excluded_from_committed(self, gcc_turnstile, gcc_workload):
        result = execute(
            gcc_turnstile.program, gcc_workload.fresh_memory(), collect_trace=True
        )
        summary = result.summary()
        assert summary.boundaries > 0
        assert summary.committed == summary.total - summary.boundaries

    def test_kind_of_opcode_total(self):
        for op in Opcode:
            assert tr.kind_of_opcode(op) in range(9)
