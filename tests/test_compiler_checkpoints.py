"""Eager checkpointing tests (Section 2.2 / Figure 3 semantics)."""

from repro.compiler.checkpoints import (
    count_checkpoints,
    insert_eager_checkpoints,
    predict_checkpoint_defs,
    strip_resilience,
)
from repro.compiler.regions import partition_regions
from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import Opcode

from helpers import build_sum_loop


def _partitioned_sum_loop(cap: int = 4):
    prog = build_sum_loop(trip=6)
    partition_regions(prog, max_stores=cap)
    return prog


class TestEagerCheckpointing:
    def test_loop_carried_registers_checkpointed(self):
        prog = _partitioned_sum_loop()
        insert_eager_checkpoints(prog)
        loop = prog.block("loop")
        ck_regs = {i.srcs[0] for i in loop.instructions if i.is_checkpoint}
        # The IV and the accumulator are live across the header boundary.
        assert len(ck_regs) >= 2

    def test_checkpoint_placed_right_after_def(self):
        prog = _partitioned_sum_loop()
        insert_eager_checkpoints(prog)
        for block in prog.blocks:
            for pos, instr in enumerate(block.instructions):
                if instr.is_checkpoint:
                    prev = block.instructions[pos - 1]
                    # Eager placement: defining instruction immediately
                    # precedes the checkpoint (or another checkpoint of a
                    # simultaneously-defined register group).
                    assert prev.dest == instr.srcs[0] or prev.is_checkpoint

    def test_intra_region_temporaries_not_checkpointed(self):
        b = ProgramBuilder("temps")
        b.begin_block("entry")
        base = b.li(0x100)
        x = b.li(3)
        y = b.addi(x, 1)  # temp, consumed by the store below
        b.store(y, base)
        b.ret()
        prog = b.finish()
        partition_regions(prog, max_stores=4)
        insert_eager_checkpoints(prog)
        assert count_checkpoints(prog) == 0

    def test_figure3_only_last_def_checkpointed(self):
        """Two defs of the same register with no boundary between: only
        the second is live across a boundary (Figure 3b)."""
        b = ProgramBuilder("fig3")
        b.begin_block("entry")
        base = b.li(0x100)
        r2 = b.li(1)
        b.addi(r2, 4, dest=r2)  # first def, overwritten below
        b.load(base, dest=r2)  # second def, live-out
        b.jmp("next")
        b.begin_block("next")
        b.store(r2, base, offset=8)
        b.store(r2, base, offset=12)
        b.ret()
        prog = b.finish()
        # cap 1 puts the stores in later regions, so r2 crosses a boundary
        partition_regions(prog, max_stores=1)
        insert_eager_checkpoints(prog)
        entry = prog.block("entry")
        ck_positions = [
            pos for pos, i in enumerate(entry.instructions) if i.is_checkpoint
        ]
        ck_of_r2 = [
            pos
            for pos in ck_positions
            if entry.instructions[pos].srcs[0] == r2
        ]
        assert len(ck_of_r2) == 1
        # ...and it follows the load (the last definition).
        prev = entry.instructions[ck_of_r2[0] - 1]
        assert prev.op is Opcode.LD

    def test_checkpoints_inherit_region(self):
        prog = _partitioned_sum_loop()
        insert_eager_checkpoints(prog)
        for block in prog.blocks:
            for pos, instr in enumerate(block.instructions):
                if instr.is_checkpoint:
                    assert instr.region_id is not None

    def test_stats_inserted_count(self):
        prog = _partitioned_sum_loop()
        stats = insert_eager_checkpoints(prog)
        assert stats.inserted == count_checkpoints(prog)
        assert stats.inserted > 0


class TestPrediction:
    def test_prediction_covers_loop_carried(self, sum_loop):
        predicted = predict_checkpoint_defs(sum_loop)
        loop = sum_loop.block("loop")
        iv_updates = [
            i
            for i in loop.instructions
            if i.dest is not None and i.dest in i.srcs
        ]
        assert any(i.uid in predicted for i in iv_updates)

    def test_prediction_skips_block_local_temps(self):
        b = ProgramBuilder("t")
        b.begin_block("entry")
        base = b.li(0x100)
        t = b.li(5)
        t2 = b.addi(t, 1)
        b.store(t2, base)
        b.ret()
        prog = b.finish()
        predicted = predict_checkpoint_defs(prog)
        temps = [i.uid for i in prog.entry.instructions if i.dest in (t, t2)]
        assert not (set(temps) & predicted)


class TestStripResilience:
    def test_roundtrip(self):
        prog = _partitioned_sum_loop()
        insert_eager_checkpoints(prog)
        before = prog.num_instructions
        removed = strip_resilience(prog)
        assert removed > 0
        assert prog.num_instructions == before - removed
        assert count_checkpoints(prog) == 0
        assert all(i.region_id is None for i in prog.instructions())
        prog.validate()

    def test_strip_is_idempotent(self):
        prog = _partitioned_sum_loop()
        insert_eager_checkpoints(prog)
        strip_resilience(prog)
        assert strip_resilience(prog) == 0
