"""Analyses on awkward CFGs: dead blocks, irreducible and multi-entry loops.

Two families of tests:

* Unreachable-block safety — the dataflow passes (liveness, lab,
  boundness) iterate reachable blocks only but must still answer queries
  about dead blocks without crashing or inventing phantom live-outs, and
  the full compile pipeline must survive a program with an orphan block.
* Irreducible CFGs — dominators and natural-loop detection on graphs
  where a "loop" has two entries. Natural-loop discovery (back edge =
  ``t -> h`` with ``h`` dominating ``t``) must correctly report *no*
  loops there rather than fabricating one.
"""

from __future__ import annotations

from repro.analysis.cfg import build_cfg
from repro.analysis.dominators import compute_dominators
from repro.analysis.liveness import compute_liveness
from repro.analysis.loops import find_loops
from repro.compiler.config import turnpike_config
from repro.compiler.pipeline import compile_program
from repro.isa import instructions as ins
from repro.isa.builder import ProgramBuilder
from repro.runtime.interpreter import execute


def _program_with_island():
    """entry -> exit, plus an 'island' block nothing jumps to."""
    b = ProgramBuilder("island")
    b.begin_block("entry")
    v = b.li(11)
    base = b.li(0x400)
    b.store(v, base)
    b.jmp("exit")
    b.begin_block("island")
    dead = b.li(99)
    b.store(dead, base, offset=4)
    b.jmp("exit")
    b.begin_block("exit")
    b.load(base)
    b.ret()
    return b.finish()


def _irreducible_program():
    """entry branches into both halves of a two-block cycle.

    ``left`` and ``right`` jump to each other, and both are reached
    directly from entry — the classic irreducible (multi-entry) loop.
    A counter bounds the cycle so the program still terminates.
    """
    b = ProgramBuilder("irreducible")
    b.begin_block("entry")
    i = b.li(0)
    limit = b.li(4)
    sel = b.li(1)
    b.beq(sel, i, "left", "right")
    b.begin_block("left")
    i = b.addi(i, 1, dest=i)
    b.blt(i, limit, "right", "exit")
    b.begin_block("right")
    i = b.addi(i, 1, dest=i)
    b.blt(i, limit, "left", "exit")
    b.begin_block("exit")
    b.ret()
    return b.finish()


class TestUnreachableBlocks:
    def test_cfg_reports_reachability(self):
        cfg = build_cfg(_program_with_island())
        assert cfg.is_reachable("entry")
        assert cfg.is_reachable("exit")
        assert not cfg.is_reachable("island")

    def test_liveness_query_on_dead_block_is_empty(self):
        program = _program_with_island()
        cfg = build_cfg(program)
        liveness = compute_liveness(cfg)
        # Dead blocks contribute nothing downstream: live-out is empty,
        # and querying them must not raise.
        island = next(bl for bl in program.blocks if bl.label == "island")
        pairs = liveness.live_after(island.label)
        assert len(pairs) == len(island.instructions)
        assert pairs[-1][1] == frozenset()

    def test_liveness_of_reachable_blocks_unpolluted(self):
        program = _program_with_island()
        liveness = compute_liveness(build_cfg(program))
        entry = program.entry
        # The island stores base+4; if dead blocks leaked into the
        # fixpoint, entry's live-out would keep the dead value alive.
        _, live_out = liveness.live_after(entry.label)[-1]
        dead_value_regs = {
            instr.dest
            for bl in program.blocks
            if bl.label == "island"
            for instr in bl.instructions
            if instr.dest is not None
        }
        assert not (live_out & dead_value_regs)

    def test_full_pipeline_compiles_and_runs_island_program(self):
        compiled = compile_program(_program_with_island(), turnpike_config())
        result = execute(compiled.program)
        assert result.memory.load(0x400) == 11

    def test_recovery_map_skips_dead_blocks(self):
        compiled = compile_program(_program_with_island(), turnpike_config())
        dead = {
            bl.label
            for bl in compiled.program.blocks
            if not build_cfg(compiled.program).is_reachable(bl.label)
        }
        for entry in compiled.recovery.entries.values():
            assert entry.block not in dead

    def test_verifier_accepts_island_program(self):
        from repro.verify import verify_compiled

        compiled = compile_program(_program_with_island(), turnpike_config())
        assert verify_compiled(compiled).ok


class TestIrreducibleCfgs:
    def test_dominators_of_multi_entry_cycle(self):
        cfg = build_cfg(_irreducible_program())
        dom = compute_dominators(cfg)
        # Neither half of the cycle dominates the other: each can be
        # reached from entry without passing through its partner.
        assert not dom.dominates("left", "right")
        assert not dom.dominates("right", "left")
        assert dom.idom["left"] == "entry"
        assert dom.idom["right"] == "entry"
        assert dom.dominates("entry", "exit")

    def test_dominator_sets_match_idom_walk(self):
        cfg = build_cfg(_irreducible_program())
        dom = compute_dominators(cfg)
        sets = dom.dominator_sets()
        assert sets["left"] == {"entry", "left"}
        assert sets["right"] == {"entry", "right"}
        assert sets["exit"] == {"entry", "exit"}

    def test_no_natural_loop_fabricated_for_irreducible_cycle(self):
        cfg = build_cfg(_irreducible_program())
        forest = find_loops(cfg, compute_dominators(cfg))
        # left<->right is a cycle but neither edge is a back edge under
        # the dominance test, so the forest must be empty.
        assert forest.headers == set()
        assert forest.loop_depth("left") == 0

    def test_reducible_loop_still_detected_alongside(self):
        # Sanity: turning the same shape into a single-entry loop (entry
        # only reaches 'left') makes it a natural loop again.
        b = ProgramBuilder("reducible")
        b.begin_block("entry")
        i = b.li(0)
        limit = b.li(4)
        b.jmp("left")
        b.begin_block("left")
        i = b.addi(i, 1, dest=i)
        b.blt(i, limit, "right", "exit")
        b.begin_block("right")
        b.jmp("left")
        b.begin_block("exit")
        b.ret()
        cfg = build_cfg(b.finish())
        forest = find_loops(cfg, compute_dominators(cfg))
        assert forest.headers == {"left"}
        loop = forest.loops["left"]
        assert loop.body == {"left", "right"}
        assert loop.exits == {"exit"}
        assert forest.loop_depth("right") == 1

    def test_dominators_ignore_unreachable_predecessors(self):
        # An unreachable block that jumps into the reachable graph must
        # not perturb idoms of its target.
        b = ProgramBuilder("dead_pred")
        b.begin_block("entry")
        b.li(1)
        b.jmp("mid")
        b.begin_block("dead")
        b.jmp("mid")
        b.begin_block("mid")
        b.ret()
        cfg = build_cfg(b.finish())
        dom = compute_dominators(cfg)
        assert dom.idom["mid"] == "entry"
        forest = find_loops(cfg, dom)
        assert forest.headers == set()
