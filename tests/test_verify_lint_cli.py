"""CLI behaviour of ``repro lint``: formats, exit codes, SARIF shape."""

from __future__ import annotations

import json

from repro.__main__ import main
from repro.verify import render_sarif, verify_compiled
from repro.verify.sarif import RULE_CATALOGUE, reports_to_sarif

from fixtures import over_capacity_region


class TestExitCodes:
    def test_clean_benchmark_exits_zero(self, capsys):
        assert main(["lint", "SPLASH3.radix", "--no-differential"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out
        assert "-> OK" in out

    def test_usage_errors_exit_two(self, capsys):
        assert main(["lint"]) == 2
        assert main(["lint", "--all", "SPLASH3.radix"]) == 2
        assert main(["lint", "no.such-benchmark"]) == 2

    def test_strict_promotes_warnings(self):
        # radix carries a genuine always-WAR store warning (R3).
        assert main(["lint", "SPLASH3.radix", "--no-differential"]) == 0
        assert (
            main(["lint", "SPLASH3.radix", "--no-differential", "--strict"])
            == 1
        )


class TestFormats:
    def test_json_format_is_parseable_and_complete(self, capsys):
        code = main(
            ["lint", "SPLASH3.radix", "--no-differential", "--format", "json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        (report,) = payload["reports"]
        assert report["program"] == "SPLASH3.radix"
        assert report["rules_run"] == [
            "R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9"
        ]

    def test_output_file(self, tmp_path, capsys):
        path = tmp_path / "report.json"
        code = main(
            [
                "lint",
                "SPLASH3.radix",
                "--no-differential",
                "--format",
                "json",
                "--output",
                str(path),
            ]
        )
        assert code == 0
        assert json.loads(path.read_text())["ok"] is True

    def test_differential_runs_by_default(self, capsys):
        assert main(["lint", "SPLASH3.radix"]) == 0
        assert "differential:" in capsys.readouterr().out


class TestUpsetModel:
    """R9: declared protection codes vs the configured fault model."""

    def test_adjacent_double_fails_parity_declarations(self, capsys):
        code = main(
            [
                "lint",
                "SPLASH3.radix",
                "--no-differential",
                "--upset-model",
                "adjacent-double",
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "error[R9]" in out
        assert "store_buffer declares parity" in out
        assert "weaker than the configured fault model" in out

    def test_unknown_upset_model_is_usage_error(self, capsys):
        code = main(
            [
                "lint",
                "SPLASH3.radix",
                "--no-differential",
                "--upset-model",
                "burstXL",
            ]
        )
        assert code == 2

    def test_r9_help_uri_is_stable(self):
        from repro.verify.sarif import rule_help_uri

        assert rule_help_uri("R9").endswith("/r9-protection-code-strength")
        assert "R9" in RULE_CATALOGUE


class TestSarif:
    def test_sarif_document_shape(self):
        report = verify_compiled(over_capacity_region())
        doc = reports_to_sarif([report])
        assert doc["version"] == "2.1.0"
        (run,) = doc["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        assert {r["id"] for r in driver["rules"]} == set(RULE_CATALOGUE)
        errors = [
            res for res in run["results"] if res["level"] == "error"
        ]
        assert errors, "the R1 fixture must surface as SARIF errors"
        location = errors[0]["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].startswith("repro://")
        assert location["region"]["startLine"] >= 1

    def test_sarif_levels_map_info_to_note(self):
        report = verify_compiled(over_capacity_region())
        doc = reports_to_sarif([report])
        levels = {res["level"] for res in doc["runs"][0]["results"]}
        assert levels <= {"error", "warning", "note"}

    def test_render_sarif_round_trips(self):
        report = verify_compiled(over_capacity_region())
        parsed = json.loads(render_sarif([report]))
        assert parsed["runs"][0]["results"]

    def test_cli_sarif_format(self, capsys):
        code = main(
            ["lint", "SPLASH3.radix", "--no-differential", "--format", "sarif"]
        )
        assert code == 0
        parsed = json.loads(capsys.readouterr().out)
        assert parsed["version"] == "2.1.0"
