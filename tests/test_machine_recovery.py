"""Fault injection and recovery tests — the paper's safety arguments as
executable checks.

* Turnstile / WAR-free / full Turnpike modes must recover from arbitrary
  register bit flips (final data memory equals the golden run);
* the deliberately unsafe mode (checkpoint fast release WITHOUT coloring)
  must corrupt recovery for some injections — reproducing Figure 16;
* per-register parity must catch corrupted store addresses before a fast
  release damages an unrelated memory location (Section 5).
"""

import pytest

from repro.compiler.config import turnpike_config, turnstile_config
from repro.compiler.pipeline import compile_program
from repro.faults.campaign import (
    run_protocol_campaigns,
    turnpike_machine_config,
    turnstile_machine_config,
    unsafe_machine_config,
    warfree_machine_config,
)
from repro.faults.injector import (
    golden_memory,
    random_register_injections,
    run_campaign,
    run_with_injection,
)
from repro.isa.registers import Reg
from repro.runtime.machine import Injection, InjectionTarget


@pytest.fixture(scope="module")
def radix_setup():
    from repro.workloads.suites import load_workload

    wl = load_workload("SPLASH3.radix")
    compiled = compile_program(wl.program, turnpike_config())
    return wl, compiled


@pytest.fixture(scope="module")
def radix_turnstile_setup():
    from repro.workloads.suites import load_workload

    wl = load_workload("SPLASH3.radix")
    compiled = compile_program(wl.program, turnstile_config())
    return wl, compiled


class TestRecoveryCorrectness:
    def test_turnpike_recovers_from_register_flips(self, radix_setup):
        wl, compiled = radix_setup
        injections = random_register_injections(
            compiled, wcdl=10, count=25, seed=11, horizon=20_000
        )
        result = run_campaign(
            compiled, turnpike_machine_config(10), wl.fresh_memory(), injections
        )
        assert result.correct_runs == result.runs
        assert result.recovery_runs == result.runs

    def test_turnstile_recovers(self, radix_turnstile_setup):
        wl, compiled = radix_turnstile_setup
        injections = random_register_injections(
            compiled, wcdl=10, count=15, seed=5, horizon=20_000
        )
        result = run_campaign(
            compiled, turnstile_machine_config(10), wl.fresh_memory(), injections
        )
        assert result.correct_runs == result.runs

    def test_warfree_mode_recovers(self, radix_setup):
        wl, compiled = radix_setup
        injections = random_register_injections(
            compiled, wcdl=10, count=15, seed=6, horizon=20_000
        )
        result = run_campaign(
            compiled, warfree_machine_config(10), wl.fresh_memory(), injections
        )
        assert result.correct_runs == result.runs

    def test_long_wcdl_still_recovers(self, radix_setup):
        wl, compiled = radix_setup
        injections = random_register_injections(
            compiled, wcdl=50, count=10, seed=7, horizon=20_000
        )
        result = run_campaign(
            compiled, turnpike_machine_config(50), wl.fresh_memory(), injections
        )
        assert result.correct_runs == result.runs

    def test_zero_delay_detection(self, radix_setup):
        """Immediate detection (sensor adjacent to the strike)."""
        wl, compiled = radix_setup
        injection = Injection(
            time=500,
            target=InjectionTarget.REGISTER,
            reg=Reg.phys(3),
            bit=7,
            detection_delay=0,
        )
        outcome = run_with_injection(
            compiled, turnpike_machine_config(10), wl.fresh_memory(), injection
        )
        assert outcome.correct

    def test_store_buffer_injection_contained(self, radix_turnstile_setup):
        """A flip inside the quarantined SB is discarded by recovery."""
        wl, compiled = radix_turnstile_setup
        injection = Injection(
            time=800,
            target=InjectionTarget.STORE_BUFFER,
            bit=13,
            detection_delay=4,
        )
        outcome = run_with_injection(
            compiled, turnstile_machine_config(10), wl.fresh_memory(), injection
        )
        assert outcome.correct


class TestFigure16NegativeControl:
    def test_unsafe_checkpoint_release_corrupts(self, radix_setup):
        """Fast-releasing checkpoints without coloring must fail for some
        injections: the corrupted value overwrites the only recovery copy
        (the paper's Figure 16 corner case)."""
        wl, compiled = radix_setup
        campaigns = run_protocol_campaigns(
            compiled, wl.fresh_memory(), wcdl=10, count=30, seed=1234
        )
        # Safe modes: everything recovers.
        assert campaigns.turnstile.correct_runs == campaigns.turnstile.runs
        assert campaigns.warfree.correct_runs == campaigns.warfree.runs
        assert campaigns.turnpike.correct_runs == campaigns.turnpike.runs
        # The unsafe mode must produce silent data corruptions.
        assert campaigns.unsafe.sdc_runs > 0

    def test_unsafe_mode_flag(self):
        cfg = unsafe_machine_config()
        assert cfg.unsafe_checkpoint_release
        assert not cfg.coloring_enabled


class TestParityProtection:
    def test_detection_delay_validation(self, radix_setup):
        from repro.runtime.machine import ResilientMachine

        wl, compiled = radix_setup
        machine = ResilientMachine(
            compiled, turnpike_machine_config(10), wl.fresh_memory()
        )
        with pytest.raises(ValueError, match="exceed WCDL"):
            machine.arm_injection(
                Injection(
                    time=10,
                    target=InjectionTarget.REGISTER,
                    reg=Reg.phys(1),
                    bit=0,
                    detection_delay=99,
                )
            )

    def test_parity_fires_for_corrupt_fast_release_address(self):
        """Targeted injection: flip a store's base register right before
        a WAR-free store commits. Parity must detect the flip (before the
        acoustic sensor would) and the run must still end correct —
        without parity the store would hit a random address that the
        re-execution never rewrites (Section 5)."""
        from repro.isa.builder import ProgramBuilder
        from repro.runtime.interpreter import execute
        from repro.runtime import trace as tr
        from repro.runtime.memory import Memory

        b = ProgramBuilder("parity")
        b.begin_block("entry")
        base = b.li(0x100)
        v = b.li(7)
        i = b.li(0)
        n = b.li(60)
        b.jmp("loop")
        b.begin_block("loop")
        off = b.shli(i, 2)
        addr = b.add(base, off)
        b.store(v, addr)  # distinct addresses: WAR-free, fast released
        b.addi(i, 1, dest=i)
        b.blt(i, n, "loop", "exit")
        b.begin_block("exit")
        b.ret()
        compiled = compile_program(b.finish(), turnpike_config())

        # Locate a mid-run fast-release store in the trace and the commit
        # tick of the instruction just before it.
        result = execute(compiled.program, Memory(), collect_trace=True)
        tick = 0
        target = None
        for entry in result.trace:
            if entry[0] == tr.K_BOUNDARY:
                continue
            tick += 1
            if entry[0] == tr.K_ST and tick > 200:
                target = (tick, entry[3])  # (commit tick of store, base reg)
                break
        assert target is not None
        store_tick, base_reg = target

        injection = Injection(
            time=store_tick - 1,  # flip lands right before the store
            target=InjectionTarget.REGISTER,
            reg=Reg.phys(base_reg),
            bit=14,
            detection_delay=10,  # acoustic sensor would be too late
        )
        outcome = run_with_injection(
            compiled, turnpike_machine_config(10), Memory(), injection
        )
        assert outcome.parity_detected
        assert outcome.correct


class TestDeterminism:
    def test_same_injection_same_outcome(self, radix_setup):
        wl, compiled = radix_setup
        injection = Injection(
            time=1234,
            target=InjectionTarget.REGISTER,
            reg=Reg.phys(5),
            bit=17,
            detection_delay=6,
        )
        golden = golden_memory(compiled, wl.fresh_memory())
        first = run_with_injection(
            compiled, turnpike_machine_config(10), wl.fresh_memory(), injection, golden
        )
        second = run_with_injection(
            compiled, turnpike_machine_config(10), wl.fresh_memory(), injection, golden
        )
        assert first.correct == second.correct
        assert first.recovered == second.recovered
        assert first.parity_detected == second.parity_detected
