"""Resilient machine protocol tests: fault-free behaviour.

A fault-free resilient run must be functionally identical to the plain
interpreter under every hardware configuration, and the protocol state
(regions, bindings, quarantine/release counters) must be consistent.
"""

import pytest

from repro.compiler.config import turnpike_config, turnstile_config
from repro.compiler.pipeline import compile_program
from repro.runtime.interpreter import execute
from repro.runtime.machine import (
    ProtocolError,
    ResilienceConfig,
    ResilientMachine,
)


def _configs():
    return {
        "turnstile": ResilienceConfig(
            wcdl=10, clq_enabled=False, coloring_enabled=False
        ),
        "warfree": ResilienceConfig(
            wcdl=10, clq_enabled=True, coloring_enabled=False
        ),
        "turnpike": ResilienceConfig(
            wcdl=10, clq_enabled=True, coloring_enabled=True
        ),
        "turnpike_ideal": ResilienceConfig(
            wcdl=10, clq_enabled=True, clq_kind="ideal", coloring_enabled=True
        ),
    }


class TestFaultFreeEquivalence:
    @pytest.mark.parametrize("mode", list(_configs()))
    def test_gcc_memory_identical(self, gcc_turnpike, gcc_workload, mode):
        golden = execute(
            gcc_turnpike.program, gcc_workload.fresh_memory()
        ).memory.data_image()
        machine = ResilientMachine(
            gcc_turnpike, _configs()[mode], gcc_workload.fresh_memory()
        )
        machine.run()
        assert machine.mem.data_image() == golden

    @pytest.mark.parametrize("wcdl", [1, 10, 50, 200])
    def test_wcdl_does_not_change_semantics(self, gcc_turnpike, gcc_workload, wcdl):
        golden = execute(
            gcc_turnpike.program, gcc_workload.fresh_memory()
        ).memory.data_image()
        cfg = ResilienceConfig(wcdl=wcdl)
        machine = ResilientMachine(gcc_turnpike, cfg, gcc_workload.fresh_memory())
        machine.run()
        assert machine.mem.data_image() == golden

    def test_turnstile_compile_on_machine(self, gcc_turnstile, gcc_workload):
        golden = execute(
            gcc_turnstile.program, gcc_workload.fresh_memory()
        ).memory.data_image()
        machine = ResilientMachine(
            gcc_turnstile, _configs()["turnstile"], gcc_workload.fresh_memory()
        )
        machine.run()
        assert machine.mem.data_image() == golden

    def test_all_quick_workloads(self, quick_workloads):
        for wl in quick_workloads:
            compiled = compile_program(wl.program, turnpike_config())
            golden = execute(
                compiled.program, wl.fresh_memory()
            ).memory.data_image()
            machine = ResilientMachine(
                compiled, _configs()["turnpike"], wl.fresh_memory()
            )
            machine.run()
            assert machine.mem.data_image() == golden, wl.name


class TestProtocolState:
    def _run(self, compiled, workload, mode="turnpike"):
        machine = ResilientMachine(
            compiled, _configs()[mode], workload.fresh_memory()
        )
        stats = machine.run()
        return machine, stats

    def test_no_recoveries_without_faults(self, gcc_turnpike, gcc_workload):
        _, stats = self._run(gcc_turnpike, gcc_workload)
        assert stats.recoveries == 0
        assert stats.parity_detections == 0

    def test_all_regions_verified_at_end(self, gcc_turnpike, gcc_workload):
        machine, _ = self._run(gcc_turnpike, gcc_workload)
        assert not machine.rbb.unverified
        assert machine.sb.occupancy() == 0

    def test_store_disposition_partition(self, gcc_turnpike, gcc_workload):
        """Every store/checkpoint is counted in exactly one disposition."""
        machine, stats = self._run(gcc_turnpike, gcc_workload)
        result = execute(
            gcc_turnpike.program, gcc_workload.fresh_memory(), collect_trace=True
        )
        summary = result.summary()
        assert (
            stats.warfree_released + stats.quarantined_stores
            == summary.regular_stores
        )
        assert (
            stats.colored_checkpoints + stats.quarantined_checkpoints
            == summary.checkpoints
        )

    def test_turnstile_mode_quarantines_everything(
        self, gcc_turnstile, gcc_workload
    ):
        _, stats = self._run(gcc_turnstile, gcc_workload, mode="turnstile")
        assert stats.warfree_released == 0
        assert stats.colored_checkpoints == 0
        assert stats.quarantined_stores > 0
        assert stats.quarantined_checkpoints > 0

    def test_region_count_matches_boundaries(self, gcc_turnpike, gcc_workload):
        machine, stats = self._run(gcc_turnpike, gcc_workload)
        result = execute(
            gcc_turnpike.program, gcc_workload.fresh_memory(), collect_trace=True
        )
        assert stats.regions == result.summary().boundaries

    def test_ideal_clq_releases_at_least_compact(self, gcc_turnpike, gcc_workload):
        _, compact = self._run(gcc_turnpike, gcc_workload, "turnpike")
        _, ideal = self._run(gcc_turnpike, gcc_workload, "turnpike_ideal")
        assert ideal.warfree_released >= compact.warfree_released

    def test_baseline_program_rejected(self, gcc_baseline):
        with pytest.raises(ValueError, match="without resilience"):
            ResilientMachine(gcc_baseline, ResilienceConfig())

    def test_pruned_bindings_recorded(self, gcc_turnpike, gcc_workload):
        _, stats = self._run(gcc_turnpike, gcc_workload)
        from repro.compiler.pruning import pruned_definitions

        if pruned_definitions(gcc_turnpike.program):
            assert stats.pruned_bindings > 0
