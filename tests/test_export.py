"""Tests for the CSV/JSON export layer."""

import csv
import io
import json

from repro.harness.experiments import Series
from repro.harness.export import (
    breakdown_to_csv,
    mapping_to_csv,
    series_to_csv,
    series_to_json,
    table1_to_json,
)


def _series():
    return [
        Series(name="A", per_benchmark={"x": 1.0, "y": 4.0}),
        Series(name="B", per_benchmark={"x": 2.0, "y": 8.0}),
    ]


class TestSeriesExport:
    def test_csv_roundtrip(self):
        text = series_to_csv(_series())
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == ["benchmark", "A", "B"]
        assert rows[1][0] == "x" and float(rows[1][1]) == 1.0
        assert rows[-1][0] == "geomean"
        assert float(rows[-1][1]) == 2.0  # geomean of 1 and 4

    def test_csv_empty(self):
        assert series_to_csv([]) == ""

    def test_json_structure(self):
        payload = json.loads(series_to_json(_series()))
        assert payload["A"]["x"] == 1.0
        assert payload["B"]["_geomean"] == 4.0

    def test_mapping_csv(self):
        text = mapping_to_csv({"bench": (1.5, 2.5)}, headers=("p", "q"))
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == ["benchmark", "p", "q"]
        assert float(rows[1][2]) == 2.5

    def test_breakdown_csv(self):
        from repro.harness.experiments import BREAKDOWN_CATEGORIES

        data = {"b": {cat: 0.1 for cat in BREAKDOWN_CATEGORIES}}
        text = breakdown_to_csv(data)
        rows = list(csv.reader(io.StringIO(text)))
        assert len(rows[0]) == 1 + len(BREAKDOWN_CATEGORIES)

    def test_table1_json(self):
        from repro.hwcost.cacti import build_table1

        payload = json.loads(table1_to_json(build_table1()))
        assert len(payload["rows"]) == 5
        assert 0.08 < payload["turnpike_vs_sb4"]["area"] < 0.12
        assert 4.5 < payload["sb40_vs_sb4"]["area"] < 5.5
