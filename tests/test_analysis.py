"""Tests for the analysis package: CFG, dominators, liveness, loops,
induction variables, reachability."""

import pytest

from repro.analysis.cfg import build_cfg
from repro.analysis.dominators import compute_dominators
from repro.analysis.induction import find_basic_ivs, find_merge_candidates
from repro.analysis.liveness import compute_liveness
from repro.analysis.loops import find_loops
from repro.analysis.reachability import compute_def_reachability
from repro.isa.builder import ProgramBuilder
from repro.isa.registers import Reg

from helpers import build_diamond, build_sum_loop


def _loop_program():
    return build_sum_loop(trip=8)


class TestCFG:
    def test_successors_of_loop(self):
        cfg = build_cfg(_loop_program())
        assert set(cfg.succs("loop")) == {"loop", "done"}

    def test_predecessors_of_header(self):
        cfg = build_cfg(_loop_program())
        assert set(cfg.preds("loop")) == {"entry", "loop"}

    def test_entry(self):
        cfg = build_cfg(_loop_program())
        assert cfg.entry == "entry"

    def test_reverse_postorder_starts_at_entry(self):
        cfg = build_cfg(_loop_program())
        assert cfg.reverse_postorder()[0] == "entry"

    def test_rpo_covers_reachable(self):
        cfg = build_cfg(build_diamond())
        assert set(cfg.reverse_postorder()) == {"entry", "neg", "pos", "join"}

    def test_rpo_order_respects_dominance(self):
        cfg = build_cfg(build_diamond())
        rpo = cfg.reverse_postorder()
        assert rpo.index("entry") < rpo.index("neg")
        assert rpo.index("neg") < rpo.index("join")
        assert rpo.index("pos") < rpo.index("join")

    def test_edges(self):
        cfg = build_cfg(build_diamond())
        assert ("entry", "neg") in cfg.edges()
        assert ("pos", "join") in cfg.edges()

    def test_unreachable_blocks_detected(self):
        b = ProgramBuilder("u")
        b.begin_block("entry")
        b.ret()
        b.begin_block("island")
        b.ret()
        cfg = build_cfg(b.finish())
        assert cfg.unreachable_blocks() == {"island"}

    def test_postorder_is_reverse_of_rpo(self):
        cfg = build_cfg(_loop_program())
        assert cfg.postorder() == list(reversed(cfg.reverse_postorder()))


class TestDominators:
    def test_entry_dominates_all(self):
        cfg = build_cfg(build_diamond())
        dom = compute_dominators(cfg)
        for label in ("neg", "pos", "join"):
            assert dom.dominates("entry", label)

    def test_branch_arms_do_not_dominate_join(self):
        cfg = build_cfg(build_diamond())
        dom = compute_dominators(cfg)
        assert not dom.dominates("neg", "join")
        assert not dom.dominates("pos", "join")

    def test_dominance_is_reflexive(self):
        cfg = build_cfg(build_diamond())
        dom = compute_dominators(cfg)
        assert dom.dominates("join", "join")

    def test_loop_header_dominates_latch(self):
        cfg = build_cfg(_loop_program())
        dom = compute_dominators(cfg)
        assert dom.dominates("loop", "loop")
        assert dom.dominates("entry", "loop")

    def test_idom_of_join_is_entry(self):
        cfg = build_cfg(build_diamond())
        dom = compute_dominators(cfg)
        assert dom.idom["join"] == "entry"

    def test_entry_has_no_idom(self):
        cfg = build_cfg(build_diamond())
        dom = compute_dominators(cfg)
        assert dom.idom["entry"] is None

    def test_dominator_sets(self):
        cfg = build_cfg(build_diamond())
        dom = compute_dominators(cfg)
        sets = dom.dominator_sets()
        assert sets["join"] == {"entry", "join"}
        assert sets["neg"] == {"entry", "neg"}

    def test_children(self):
        cfg = build_cfg(build_diamond())
        dom = compute_dominators(cfg)
        assert set(dom.children("entry")) == {"neg", "pos", "join"}


class TestLiveness:
    def test_loop_carried_values_live_at_header(self):
        prog = _loop_program()
        cfg = build_cfg(prog)
        live = compute_liveness(cfg)
        # The accumulator, IV, limit, and base must be live into the loop.
        assert len(live.live_in["loop"]) >= 4

    def test_dead_after_last_use(self):
        b = ProgramBuilder("p")
        b.begin_block("entry")
        x = b.li(1)
        y = b.addi(x, 1)
        b.store(y, b.li(0x100))
        b.ret()
        prog = b.finish()
        cfg = build_cfg(prog)
        live = compute_liveness(cfg)
        assert live.live_out["entry"] == set()

    def test_live_in_includes_upward_exposed_uses(self):
        prog = build_diamond()
        cfg = build_cfg(prog)
        live = compute_liveness(cfg)
        live_in_entry = live.live_in["entry"]
        (x,) = prog.live_in
        assert x in live_in_entry

    def test_live_after_per_instruction(self):
        b = ProgramBuilder("p")
        b.begin_block("entry")
        x = b.li(5)
        y = b.addi(x, 1)
        b.store(y, b.li(0x100))
        b.ret()
        prog = b.finish()
        cfg = build_cfg(prog)
        live = compute_liveness(cfg)
        pairs = live.live_after("entry")
        # After the LI defining x, x is live (used by the ADDI).
        assert x in pairs[0][1]
        # After the store, nothing is live.
        assert pairs[-2][1] == set()

    def test_branch_operands_live(self):
        prog = _loop_program()
        cfg = build_cfg(prog)
        live = compute_liveness(cfg)
        pairs = live.live_after("loop")
        branch_instr, after = pairs[-1]
        assert branch_instr.is_branch


class TestLoops:
    def test_self_loop_detected(self):
        forest = find_loops(*_cfg_dom(_loop_program()))
        assert "loop" in forest.headers

    def test_loop_body(self):
        forest = find_loops(*_cfg_dom(_loop_program()))
        assert forest.loops["loop"].body == {"loop"}

    def test_loop_exits(self):
        forest = find_loops(*_cfg_dom(_loop_program()))
        assert forest.loops["loop"].exits == {"done"}

    def test_no_loops_in_diamond(self):
        forest = find_loops(*_cfg_dom(build_diamond()))
        assert forest.headers == set()

    def test_nested_loops(self):
        b = ProgramBuilder("nest")
        b.begin_block("entry")
        i = b.li(0)
        n = b.li(4)
        b.jmp("outer")
        b.begin_block("outer")
        j = b.li(0)
        b.jmp("inner")
        b.begin_block("inner")
        b.addi(j, 1, dest=j)
        b.blt(j, n, "inner", "outer_latch")
        b.begin_block("outer_latch")
        b.addi(i, 1, dest=i)
        b.blt(i, n, "outer", "exit")
        b.begin_block("exit")
        b.ret()
        forest = find_loops(*_cfg_dom(b.finish()))
        assert {"outer", "inner"} <= forest.headers
        assert forest.loops["inner"].parent == "outer"
        assert forest.loops["outer"].parent is None
        assert forest.loop_depth("inner") == 2
        assert forest.loop_depth("exit") == 0

    def test_innermost_loop_of(self):
        forest = find_loops(*_cfg_dom(_loop_program()))
        assert forest.innermost_loop_of("loop").header == "loop"
        assert forest.innermost_loop_of("entry") is None


def _cfg_dom(prog):
    cfg = build_cfg(prog)
    return cfg, compute_dominators(cfg)


def _two_iv_loop():
    """Loop with two constant-step IVs: i += 1, p += 4."""
    b = ProgramBuilder("ivs")
    b.begin_block("entry")
    i = b.li(0)
    p = b.li(0x1000)
    n = b.li(16)
    b.jmp("loop")
    b.begin_block("loop")
    v = b.load(p)
    b.store(v, p, offset=0x800)
    b.addi(i, 1, dest=i)
    b.addi(p, 4, dest=p)
    b.blt(i, n, "loop", "exit")
    b.begin_block("exit")
    b.ret()
    return b.finish(), i, p


class TestInduction:
    def test_basic_ivs_found(self):
        prog, i, p = _two_iv_loop()
        cfg, dom = _cfg_dom(prog)
        loop = find_loops(cfg, dom).loops["loop"]
        ivs = {iv.reg: iv for iv in find_basic_ivs(cfg, loop)}
        assert set(ivs) == {i, p}
        assert ivs[i].step == 1
        assert ivs[p].step == 4

    def test_init_values_resolved(self):
        prog, i, p = _two_iv_loop()
        cfg, dom = _cfg_dom(prog)
        loop = find_loops(cfg, dom).loops["loop"]
        ivs = {iv.reg: iv for iv in find_basic_ivs(cfg, loop)}
        assert ivs[i].init_value == 0
        assert ivs[p].init_value == 0x1000

    def test_multiply_updated_reg_not_iv(self):
        b = ProgramBuilder("m")
        b.begin_block("entry")
        i = b.li(0)
        n = b.li(4)
        b.jmp("loop")
        b.begin_block("loop")
        b.addi(i, 1, dest=i)
        b.addi(i, 1, dest=i)  # second update disqualifies
        b.blt(i, n, "loop", "exit")
        b.begin_block("exit")
        b.ret()
        prog = b.finish()
        cfg, dom = _cfg_dom(prog)
        loop = find_loops(cfg, dom).loops["loop"]
        assert find_basic_ivs(cfg, loop) == []

    def test_merge_candidate_linear_relation(self):
        prog, i, p = _two_iv_loop()
        cfg, dom = _cfg_dom(prog)
        loop = find_loops(cfg, dom).loops["loop"]
        ivs = find_basic_ivs(cfg, loop)
        cands = find_merge_candidates(ivs)
        # p = 4*i + 0x1000 must be among the candidates.
        match = [
            c
            for c in cands
            if c.anchor.reg == i and c.dependent.reg == p
        ]
        assert match and match[0].scale == 4 and match[0].offset == 0x1000

    def test_non_integral_scale_rejected(self):
        # anchor step 4, dependent step 1 -> scale 1/4, not allowed.
        prog, i, p = _two_iv_loop()
        cfg, dom = _cfg_dom(prog)
        loop = find_loops(cfg, dom).loops["loop"]
        ivs = find_basic_ivs(cfg, loop)
        bad = [
            c
            for c in find_merge_candidates(ivs)
            if c.anchor.reg == p and c.dependent.reg == i
        ]
        assert bad == []

    def test_scale_one_sorted_first(self):
        b = ProgramBuilder("s1")
        b.begin_block("entry")
        a = b.li(0)
        c = b.li(100)
        i = b.li(0)
        n = b.li(8)
        b.jmp("loop")
        b.begin_block("loop")
        b.addi(a, 4, dest=a)
        b.addi(c, 4, dest=c)
        b.addi(i, 1, dest=i)
        b.blt(i, n, "loop", "exit")
        b.begin_block("exit")
        b.ret()
        prog = b.finish()
        cfg, dom = _cfg_dom(prog)
        loop = find_loops(cfg, dom).loops["loop"]
        cands = find_merge_candidates(find_basic_ivs(cfg, loop))
        assert cands[0].scale == 1


class TestReachability:
    def test_def_after_point_in_same_block(self):
        b = ProgramBuilder("r")
        b.begin_block("entry")
        x = b.li(1)
        b.li(2, dest=x)
        b.ret()
        prog = b.finish()
        reach = compute_def_reachability(build_cfg(prog))
        assert reach.def_reachable_after("entry", 0, x)
        assert not reach.def_reachable_after("entry", 1, x)

    def test_def_in_loop_reachable_from_itself(self):
        prog = _loop_program()
        reach = compute_def_reachability(build_cfg(prog))
        # The IV update inside the loop reaches itself via the back edge.
        loop_block = prog.block("loop")
        iv_updates = [
            pos
            for pos, instr in enumerate(loop_block.instructions)
            if instr.dest is not None and instr.dest in instr.srcs
        ]
        assert iv_updates
        pos = iv_updates[0]
        reg = loop_block.instructions[pos].dest
        assert reach.def_reachable_after("loop", pos, reg)

    def test_defs_in_dead_branch_not_reachable(self):
        prog = build_diamond()
        reach = compute_def_reachability(build_cfg(prog))
        # From 'join', neither branch arm is reachable.
        assert "neg" not in reach.blocks_reachable_from("join")

    def test_blocks_reachable_from_entry(self):
        prog = build_diamond()
        reach = compute_def_reachability(build_cfg(prog))
        assert reach.blocks_reachable_from("entry") == {"neg", "pos", "join"}
