"""Unit tests for the hardware building blocks: CLQ, coloring, RBB,
store buffers, caches, branch predictor."""

import pytest

from repro.arch.branch import BimodalPredictor
from repro.arch.cache import Cache, MemoryHierarchy
from repro.arch.clq import CompactCLQ, IdealCLQ, make_clq
from repro.arch.coloring import QUARANTINE, ColorMaps
from repro.arch.config import CacheConfig
from repro.arch.rbb import RegionBoundaryBuffer
from repro.arch.store_buffer import (
    FunctionalStoreBuffer,
    SBEntry,
    TimingStoreBuffer,
)


class TestIdealCLQ:
    def test_no_war_without_loads(self):
        clq = IdealCLQ()
        clq.begin_region(0)
        assert not clq.store_has_war(0, 0x100)

    def test_war_on_loaded_address(self):
        clq = IdealCLQ()
        clq.begin_region(0)
        clq.record_load(0, 0x100)
        assert clq.store_has_war(0, 0x100)
        assert not clq.store_has_war(0, 0x104)

    def test_regions_isolated(self):
        clq = IdealCLQ()
        clq.begin_region(0)
        clq.record_load(0, 0x100)
        clq.begin_region(1)
        assert not clq.store_has_war(1, 0x100)

    def test_retire_clears(self):
        clq = IdealCLQ()
        clq.begin_region(0)
        clq.record_load(0, 0x100)
        clq.retire_region(0)
        # Untracked instance: conservative conflict.
        assert clq.store_has_war(0, 0x200)

    def test_stats_counted(self):
        clq = IdealCLQ()
        clq.begin_region(0)
        clq.record_load(0, 0x100)
        clq.store_has_war(0, 0x100)
        clq.store_has_war(0, 0x104)
        assert clq.stats.loads_inserted == 1
        assert clq.stats.war_checks == 2
        assert clq.stats.war_conflicts == 1


class TestCompactCLQ:
    def test_range_check_exact_hit(self):
        clq = CompactCLQ(size=2)
        clq.begin_region(0)
        clq.record_load(0, 0x100)
        assert clq.store_has_war(0, 0x100)

    def test_range_false_positive(self):
        """The range [min,max] conservatively flags untouched addresses
        inside the hull — the imprecision Figure 15 quantifies."""
        clq = CompactCLQ(size=2)
        clq.begin_region(0)
        clq.record_load(0, 0x100)
        clq.record_load(0, 0x200)
        assert clq.store_has_war(0, 0x180)  # never loaded, inside range

    def test_outside_range_is_free(self):
        clq = CompactCLQ(size=2)
        clq.begin_region(0)
        clq.record_load(0, 0x100)
        clq.record_load(0, 0x200)
        assert not clq.store_has_war(0, 0x300)

    def test_overflow_recycles_oldest_closed_entry(self):
        clq = CompactCLQ(size=2)
        clq.begin_region(0)
        clq.record_load(0, 0x100)
        clq.begin_region(1)
        clq.record_load(1, 0x200)
        clq.begin_region(2)  # overflow: instance 0's entry is recycled
        assert clq.stats.overflows == 1
        clq.record_load(2, 0x300)
        assert clq.store_has_war(2, 0x300)
        assert not clq.store_has_war(2, 0x400)
        # Instance 0 lost its tracking: conservative quarantine.
        assert clq.store_has_war(0, 0x999)

    def test_compact_conservative_vs_ideal(self):
        """Compact never fast-releases a store the ideal CLQ would
        quarantine (false negatives are impossible by construction)."""
        ideal, compact = IdealCLQ(), CompactCLQ(size=4)
        import random

        rng = random.Random(3)
        for inst in range(4):
            ideal.begin_region(inst)
            compact.begin_region(inst)
            loads = [rng.randrange(0, 64) * 4 for _ in range(6)]
            for addr in loads:
                ideal.record_load(inst, addr)
                compact.record_load(inst, addr)
            for addr in range(0, 256, 4):
                if ideal.store_has_war(inst, addr):
                    assert compact.store_has_war(inst, addr)

    def test_size_validation(self):
        with pytest.raises(ValueError):
            CompactCLQ(size=0)

    def test_factory(self):
        assert isinstance(make_clq("ideal"), IdealCLQ)
        assert isinstance(make_clq("compact", 3), CompactCLQ)
        with pytest.raises(ValueError):
            make_clq("bogus")

    def test_occupancy_stats(self):
        clq = CompactCLQ(size=4)
        for inst in range(3):
            clq.begin_region(inst)
            clq.record_load(inst, 0x100 + inst)
        assert clq.stats.occupancy_max == 3
        assert clq.stats.occupancy_avg > 0


class TestColorMaps:
    def test_assignment_rotates_colors(self):
        cm = ColorMaps(num_colors=4)
        colors = {cm.assign(inst, reg=5) for inst in range(4)}
        assert QUARANTINE not in colors
        assert len(colors) == 4

    def test_exhaustion_falls_back_to_quarantine(self):
        cm = ColorMaps(num_colors=2)
        assert cm.assign(0, 5) != QUARANTINE
        assert cm.assign(1, 5) != QUARANTINE
        assert cm.assign(2, 5) == QUARANTINE
        assert cm.stats.fallback_quarantined == 1

    def test_same_region_reuses_color(self):
        cm = ColorMaps(num_colors=4)
        first = cm.assign(0, 5)
        second = cm.assign(0, 5)
        assert first == second
        assert cm.available(5) == 3

    def test_verify_promotes_and_reclaims(self):
        cm = ColorMaps(num_colors=4)
        c0 = cm.assign(0, 5)
        cm.verify(0)
        assert cm.verified_color(5) == c0
        c1 = cm.assign(1, 5)
        cm.verify(1)
        # c0 displaced from VC and returned to the pool.
        assert cm.verified_color(5) == c1
        assert cm.available(5) == 3

    def test_discard_returns_colors(self):
        cm = ColorMaps(num_colors=4)
        cm.assign(0, 5)
        cm.assign(1, 5)
        cm.discard([0, 1])
        assert cm.available(5) == 4
        assert cm.verified_color(5) is None

    def test_quarantine_color_not_reclaimed(self):
        cm = ColorMaps(num_colors=1)
        assert cm.assign(0, 5) != QUARANTINE
        assert cm.assign(1, 5) == QUARANTINE
        cm.verify(0)
        cm.verify(1)
        # VC now points at the quarantine slot; the real color returned.
        assert cm.verified_color(5) == QUARANTINE
        assert cm.available(5) == 1

    def test_storage_bits_matches_paper(self):
        # 3 maps x log2(4 colors) = 6 bits per register (Section 6.5).
        assert ColorMaps(num_colors=4).storage_bits == 6

    def test_independent_registers(self):
        cm = ColorMaps(num_colors=2)
        cm.assign(0, 1)
        cm.assign(0, 2)
        assert cm.available(1) == 1
        assert cm.available(2) == 1


class TestRBB:
    def test_open_close_cycle(self):
        rbb = RegionBoundaryBuffer(wcdl=10)
        first = rbb.open_region(0, now=0.0)
        assert rbb.current is first
        second = rbb.open_region(1, now=5.0)
        assert rbb.current is second
        assert first.end_time == 5.0
        assert list(rbb.unverified) == [first]

    def test_verification_after_wcdl(self):
        rbb = RegionBoundaryBuffer(wcdl=10)
        rbb.open_region(0, 0.0)
        rbb.open_region(1, 5.0)
        assert rbb.due_verifications(14.0) == []
        done = rbb.due_verifications(15.0)
        assert len(done) == 1 and done[0].region_id == 0

    def test_detection_vetoes_verification(self):
        rbb = RegionBoundaryBuffer(wcdl=10)
        rbb.open_region(0, 0.0)
        rbb.open_region(1, 5.0)
        # Detection at exactly the deadline: verification must not happen.
        assert rbb.due_verifications(20.0, before=15.0) == []

    def test_earliest_unverified_prefers_closed(self):
        rbb = RegionBoundaryBuffer(wcdl=10)
        a = rbb.open_region(0, 0.0)
        rbb.open_region(1, 5.0)
        assert rbb.earliest_unverified() is a

    def test_earliest_unverified_falls_back_to_current(self):
        rbb = RegionBoundaryBuffer(wcdl=10)
        a = rbb.open_region(0, 0.0)
        assert rbb.earliest_unverified() is a

    def test_discard_unverified(self):
        rbb = RegionBoundaryBuffer(wcdl=10)
        rbb.open_region(0, 0.0)
        rbb.open_region(1, 5.0)
        dropped = rbb.discard_unverified()
        assert len(dropped) == 2
        assert rbb.current is None
        assert not rbb.unverified

    def test_all_prior_verified(self):
        rbb = RegionBoundaryBuffer(wcdl=5)
        rbb.open_region(0, 0.0)
        assert rbb.all_prior_verified()
        rbb.open_region(1, 2.0)
        assert not rbb.all_prior_verified()
        rbb.due_verifications(10.0)
        assert rbb.all_prior_verified()

    def test_instance_ids_monotonic(self):
        rbb = RegionBoundaryBuffer(wcdl=5)
        ids = [rbb.open_region(0, float(t)).instance for t in range(5)]
        assert ids == sorted(ids) and len(set(ids)) == 5

    def test_stats(self):
        rbb = RegionBoundaryBuffer(wcdl=1)
        for t in range(4):
            rbb.open_region(t, float(t))
        rbb.due_verifications(100.0)
        assert rbb.stats.instances_opened == 4
        assert rbb.stats.instances_verified == 3  # last one still open
        assert rbb.stats.max_unverified >= 1


class TestFunctionalStoreBuffer:
    def _entry(self, instance, addr, value):
        return SBEntry(
            instance=instance,
            is_checkpoint=False,
            addr=addr,
            reg=-1,
            color=QUARANTINE,
            value=value,
        )

    def test_forwarding_youngest(self):
        sb = FunctionalStoreBuffer()
        sb.push(self._entry(0, 0x100, 1))
        sb.push(self._entry(0, 0x100, 2))
        assert sb.forward(0x100) == 2

    def test_forwarding_miss(self):
        sb = FunctionalStoreBuffer()
        sb.push(self._entry(0, 0x100, 1))
        assert sb.forward(0x104) is None

    def test_checkpoints_not_forwarded(self):
        sb = FunctionalStoreBuffer()
        sb.push(
            SBEntry(
                instance=0, is_checkpoint=True, addr=-1, reg=3,
                color=0, value=11,
            )
        )
        assert sb.forward(-1) is None

    def test_release_instance_order(self):
        sb = FunctionalStoreBuffer()
        sb.push(self._entry(0, 0x100, 1))
        sb.push(self._entry(1, 0x104, 2))
        sb.push(self._entry(0, 0x108, 3))
        released = sb.release_instance(0)
        assert [e.value for e in released] == [1, 3]
        assert sb.occupancy() == 1

    def test_discard_all(self):
        sb = FunctionalStoreBuffer()
        sb.push(self._entry(0, 0x100, 1))
        assert sb.discard_all() == 1
        assert sb.occupancy() == 0

    def test_corrupt_entry(self):
        sb = FunctionalStoreBuffer()
        sb.push(self._entry(0, 0x100, 0))
        sb.corrupt_entry(0, bit=3)
        assert sb.forward(0x100) == 8


class TestTimingStoreBuffer:
    def test_allocation_when_free(self):
        sb = TimingStoreBuffer(2)
        t, stalled = sb.allocation_time(5.0)
        assert t == 5.0 and not stalled

    def test_allocation_waits_for_release(self):
        sb = TimingStoreBuffer(1)
        sb.push(10.0, 0, 0x100)
        t, stalled = sb.allocation_time(5.0)
        assert t == 10.0 and not stalled

    def test_open_region_deadlock_flag(self):
        sb = TimingStoreBuffer(1)
        sb.push(float("inf"), 0, 0x100)
        _, stalled = sb.allocation_time(5.0)
        assert stalled

    def test_set_instance_release_drains_serially(self):
        sb = TimingStoreBuffer(4)
        for k in range(3):
            sb.push(float("inf"), 7, 0x100 + 4 * k)
        sb.set_instance_release(7, release_base=100.0)
        releases = sorted(e[0] for e in sb.entries)
        assert releases == [100.0, 101.0, 102.0]

    def test_has_pending_address(self):
        sb = TimingStoreBuffer(4)
        sb.push(50.0, 0, 0x100)
        assert sb.has_pending_address(0x100, now=10.0)
        assert not sb.has_pending_address(0x104, now=10.0)
        assert not sb.has_pending_address(0x100, now=60.0)  # drained

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            TimingStoreBuffer(0)


class TestCache:
    def _config(self, size=1024, ways=2, line=64, lat=2):
        return CacheConfig(size_bytes=size, ways=ways, line_bytes=line, hit_latency=lat)

    def test_miss_then_hit(self):
        cache = Cache(self._config())
        assert not cache.access(0x100)
        assert cache.access(0x100)

    def test_same_line_hits(self):
        cache = Cache(self._config())
        cache.access(0x100)
        assert cache.access(0x13C)  # same 64B line

    def test_lru_eviction(self):
        # 1KB, 2-way, 64B lines -> 8 sets; three lines mapping to set 0.
        cache = Cache(self._config())
        a, b, c = 0x0, 0x200, 0x400  # stride 512 = 8 sets * 64
        cache.access(a)
        cache.access(b)
        cache.access(c)  # evicts a (LRU)
        assert not cache.access(a)

    def test_lru_refresh(self):
        cache = Cache(self._config())
        a, b, c = 0x0, 0x200, 0x400
        cache.access(a)
        cache.access(b)
        cache.access(a)  # refresh a
        cache.access(c)  # evicts b now
        assert cache.access(a)

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            Cache(self._config(size=1000))
        with pytest.raises(ValueError):
            Cache(self._config(line=48))

    def test_hierarchy_latencies(self):
        h = MemoryHierarchy(
            self._config(size=1024, lat=2),
            self._config(size=4096, ways=4, lat=20),
            memory_latency=80,
        )
        first = h.load_latency(0x100)
        second = h.load_latency(0x100)
        assert first == 2 + 20 + 80  # cold miss everywhere
        assert second == 2  # L1 hit

    def test_hierarchy_l2_hit(self):
        h = MemoryHierarchy(
            self._config(size=128, ways=1, lat=2),
            self._config(size=4096, ways=4, lat=20),
            memory_latency=80,
        )
        h.load_latency(0x0)
        h.load_latency(0x80)
        h.load_latency(0x100)  # L1 (2 sets) thrashes; L2 retains
        latency = h.load_latency(0x0)
        assert latency == 22


class TestBimodalPredictor:
    def test_learns_taken_loop(self):
        p = BimodalPredictor()
        for _ in range(50):
            p.predict_and_update(7, taken=True)
        assert p.misprediction_rate < 0.1

    def test_alternating_pattern_hurts(self):
        p = BimodalPredictor()
        for k in range(200):
            p.predict_and_update(9, taken=bool(k % 2))
        assert p.misprediction_rate > 0.3

    def test_entries_power_of_two(self):
        with pytest.raises(ValueError):
            BimodalPredictor(entries=100)

    def test_distinct_branches_independent(self):
        p = BimodalPredictor(entries=512)
        for _ in range(20):
            p.predict_and_update(1, taken=True)
            p.predict_and_update(2, taken=False)
        correct_t = p.predict_and_update(1, taken=True)
        correct_f = p.predict_and_update(2, taken=False)
        assert correct_t and correct_f
