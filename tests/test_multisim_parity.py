"""Differential parity wall for the multi-lane sweep engine.

:mod:`repro.runtime.multisim` executes the shared committed stream once
(fetch/decode/functional work, branch outcomes and memory latencies
baked into a flat feed) and advances K independent timing lanes over it.
Every lane is required to be *byte-identical* — full
:class:`~repro.arch.stats.SimStats` dataclass equality, which covers the
cache counters, spill/app store split, forced closures, and
misprediction counts that ``as_dict`` omits — to a solo
:class:`~repro.arch.core.InOrderCore` run of the same trace under the
same configs.

The wall has three layers:

1. every benchmark of the 36-entry suite, Turnpike scheme, one lane;
2. the quick subset under a wide hardware-variant fan (ideal/compact
   CLQ, CLQ sizes, WCDLs, Turnstile, disabled resilience) in a single
   ``run_lanes`` call, so the shared-decode grouping itself is
   exercised;
3. the engine end-to-end: ``run_sweep`` against solo ``simulate``,
   including digest-level dedup and warm-cache resolution.
"""

from __future__ import annotations

import pytest

from repro.arch import CoreConfig, InOrderCore, ResilienceHardwareConfig
from repro.compiler.config import turnpike_config, turnstile_config
from repro.harness.runner import (
    RunCache,
    _baseline_config,
    simulate,
    turnpike_scheme,
    turnstile_scheme,
)
from repro.harness.sweep import DesignPoint, lattice, plan_sweep, run_sweep
from repro.runtime.multisim import decode_feed, run_lanes
from repro.workloads.suites import all_profiles, quick_subset

ALL_UIDS = [p.uid for p in all_profiles()]
QUICK_UIDS = [p.uid for p in quick_subset()]

# One in-memory cache for the whole module: traces compile once, and the
# engine tests get the exact accessors production uses.
_CACHE = RunCache(persistent=None)


def _trace(uid: str, compiler):
    return _CACHE.prepared(uid, compiler).trace


def _solo(trace, hw: ResilienceHardwareConfig, core: CoreConfig | None = None):
    return InOrderCore(core or CoreConfig(), hw).run(trace)


class TestLaneParityFullSuite:
    """Every benchmark, Turnpike scheme: lane == solo, all fields."""

    @pytest.mark.parametrize("uid", ALL_UIDS)
    def test_turnpike_lane_matches_solo(self, uid):
        hw = ResilienceHardwareConfig.turnpike(wcdl=10)
        trace = _trace(uid, turnpike_config())
        ref = _solo(trace, hw)
        (lane,) = run_lanes(trace, [(CoreConfig(), hw)])
        assert lane == ref  # dataclass eq: every field, cache dict included


# The hardware fan deliberately crosses every flat-kernel specialisation:
# ideal vs compact CLQ, CLQ capacity, coloring on/off, WCDL spread, tiny
# SB, and resilience fully disabled (the baseline decode group).
_VARIANTS = [
    ResilienceHardwareConfig.turnpike(wcdl=10),
    ResilienceHardwareConfig.turnpike(wcdl=50),
    ResilienceHardwareConfig.turnpike(wcdl=10, clq_kind="ideal"),
    ResilienceHardwareConfig.turnpike(wcdl=10, clq_size=4),
    ResilienceHardwareConfig.turnstile(wcdl=10),
    ResilienceHardwareConfig.turnstile(wcdl=30),
    ResilienceHardwareConfig.baseline(),
]


class TestSharedDecodeLaneFan:
    """One run_lanes call, many configs: grouping must not leak state."""

    @pytest.mark.parametrize("uid", QUICK_UIDS)
    def test_variant_fan_matches_solo(self, uid):
        trace = _trace(uid, turnpike_config())
        lanes = [(CoreConfig(), hw) for hw in _VARIANTS]
        feeds = {}
        stats = run_lanes(trace, lanes, feeds)
        assert len(stats) == len(_VARIANTS)
        for hw, lane in zip(_VARIANTS, stats):
            assert lane == _solo(trace, hw), hw
        # Exactly two decode groups: resilient and baseline. The feed
        # dict is the witness that decode ran once per group, not once
        # per lane.
        assert {enabled for _, enabled in feeds} == {True, False}
        assert len(feeds) == 2

    def test_feed_reuse_across_calls_is_identical(self):
        trace = _trace(QUICK_UIDS[0], turnpike_config())
        hw = ResilienceHardwareConfig.turnpike(wcdl=20)
        feeds = {}
        (first,) = run_lanes(trace, [(CoreConfig(), hw)], feeds)
        # Second call with the carried feeds dict must not re-decode and
        # must produce the same bytes.
        (second,) = run_lanes(trace, [(CoreConfig(), hw)], feeds)
        assert first == second

    def test_decode_feed_cache_stats_match_solo(self):
        uid = QUICK_UIDS[0]
        trace = _trace(uid, turnpike_config())
        hw = ResilienceHardwareConfig.turnpike(wcdl=10)
        _, cache_stats, _ = decode_feed(trace, CoreConfig(), resilient=True)
        assert cache_stats == _solo(trace, hw).cache


class TestEngineEndToEnd:
    """run_sweep == simulate, with dedup and warm-path behaviour."""

    def test_run_sweep_matches_simulate(self):
        uids = QUICK_UIDS[:2]
        pairs = [
            turnpike_scheme(),
            turnstile_scheme(),
            (_baseline_config(), ResilienceHardwareConfig.baseline()),
        ]
        points = lattice(uids, pairs)
        engine_cache = RunCache(persistent=None)
        result = run_sweep(points, cache=engine_cache)
        solo_cache = RunCache(persistent=None)
        for point in points:
            ref = simulate(
                point.uid, point.compiler, point.hardware,
                core=point.core, cache=solo_cache,
            )
            assert result[point] == ref, point

    def test_digest_equal_configs_share_one_lane(self):
        uid = QUICK_UIDS[0]
        hw = ResilienceHardwareConfig.turnpike(wcdl=10)
        a = turnpike_config()
        b = turnpike_config().with_name("renamed-turnpike")
        points = [DesignPoint(uid, a, hw), DesignPoint(uid, b, hw)]
        cache = RunCache(persistent=None)
        plan = plan_sweep(points, cache)
        # Same structural program, same hardware: one batch, one lane,
        # one content-addressed key for both points.
        assert len(plan.batches) == 1
        assert plan.planned_lanes == 1
        assert plan.keys[points[0]] == plan.keys[points[1]]
        result = run_sweep(points, cache=cache)
        assert result[points[0]] == result[points[1]]

    def test_warm_cache_resolves_without_batches(self):
        uid = QUICK_UIDS[0]
        points = lattice([uid], [turnpike_scheme()])
        cache = RunCache(persistent=None)
        first = run_sweep(points, cache=cache)
        plan = plan_sweep(points, cache)
        assert not plan.batches
        second = run_sweep(points, cache=cache)
        assert first == second

    def test_solo_accessors_hit_engine_results(self, monkeypatch):
        """After a sweep, simulate() must be a pure cache hit."""
        import repro.harness.runner as runner_mod

        uid = QUICK_UIDS[0]
        compiler, hw = turnpike_scheme()
        cache = RunCache(persistent=None)
        result = run_sweep(lattice([uid], [(compiler, hw)]), cache=cache)

        def boom(*args, **kwargs):
            raise AssertionError("solo recompute after sweep")

        monkeypatch.setattr(runner_mod.InOrderCore, "run", boom)
        stats = simulate(uid, compiler, hw, cache=cache)
        assert stats == result[DesignPoint(uid, compiler, hw)]

    def test_results_are_defensive_copies(self):
        uid = QUICK_UIDS[0]
        point = DesignPoint(uid, *turnpike_scheme())
        cache = RunCache(persistent=None)
        first = run_sweep([point], cache=cache)[point]
        first.cycles = -1.0
        first.cache["l1d_hits"] = -1
        second = run_sweep([point], cache=cache)[point]
        assert second.cycles != -1.0
        assert second.cache.get("l1d_hits") != -1

    def test_persistent_layer_round_trip(self, tmp_path):
        from repro.harness.artifacts import ArtifactCache

        uid = QUICK_UIDS[0]
        points = lattice([uid], [turnpike_scheme()])
        disk = ArtifactCache(tmp_path / "sweep-cache")
        warm = run_sweep(points, cache=RunCache(persistent=disk))
        # A fresh process-level cache over the same disk layer resolves
        # the whole plan from artifacts.
        cold = RunCache(persistent=disk)
        plan = plan_sweep(points, cold)
        assert not plan.batches
        again = run_sweep(points, cache=cold)
        assert again == warm
