"""Register allocation tests, including the store-aware spill policy."""

import pytest

from repro.compiler.regalloc import (
    STORE_AWARE_WRITE_FACTOR,
    allocate_registers,
    scratch_registers,
)
from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import Opcode, StoreKind
from repro.isa.registers import RegisterFile
from repro.runtime.interpreter import execute
from repro.runtime.memory import Memory

from helpers import build_diamond, build_sum_loop


def _image(prog, init=None):
    return execute(prog, Memory(), initial_registers=init).memory.data_image()


class TestBasicAllocation:
    def test_no_virtual_registers_remain(self, sum_loop):
        allocate_registers(sum_loop)
        for instr in sum_loop.instructions():
            assert instr.dest is None or not instr.dest.is_virtual
            assert all(not s.is_virtual for s in instr.srcs)

    def test_semantics_preserved(self):
        golden = _image(build_sum_loop(trip=10))
        prog = build_sum_loop(trip=10)
        allocate_registers(prog)
        assert _image(prog) == golden

    def test_program_validates_after_allocation(self, sum_loop):
        allocate_registers(sum_loop)
        sum_loop.validate()

    def test_live_in_rewritten_to_physical(self, diamond):
        allocate_registers(diamond)
        assert all(not r.is_virtual for r in diamond.live_in)

    def test_no_spills_when_registers_suffice(self, sum_loop):
        stats = allocate_registers(sum_loop)
        assert stats.spilled == 0
        assert stats.spill_stores == 0

    def test_diamond_semantics_with_live_in(self):
        golden_prog = build_diamond()
        (x,) = golden_prog.live_in
        golden = _image(golden_prog, {x: -7})
        prog = build_diamond()
        allocate_registers(prog)
        (px,) = prog.live_in
        assert _image(prog, {px: -7}) == golden


def _pressure_program(values: int, small_rf: bool = False):
    """More simultaneously-live values than registers."""
    b = ProgramBuilder(
        "pressure",
        register_file=RegisterFile(num_registers=12, reserved=(0, 11))
        if small_rf
        else RegisterFile(),
    )
    b.begin_block("entry")
    base = b.li(0x100)
    vals = [b.li(k * 3 + 1) for k in range(values)]
    # Use them all after all are live.
    acc = vals[0]
    for v in vals[1:]:
        acc = b.add(acc, v)
    for k, v in enumerate(vals):
        b.store(v, base, offset=4 * k)
    b.store(acc, base, offset=4 * values)
    b.ret()
    return b.finish()


class TestSpilling:
    def test_spills_under_pressure(self):
        prog = _pressure_program(12, small_rf=True)
        stats = allocate_registers(prog)
        assert stats.spilled > 0
        assert stats.spill_loads > 0

    def test_spilled_semantics_preserved(self):
        golden = _image(_pressure_program(12, small_rf=True))
        prog = _pressure_program(12, small_rf=True)
        allocate_registers(prog)
        assert _image(prog) == golden

    def test_spill_stores_marked(self):
        prog = _pressure_program(12, small_rf=True)
        allocate_registers(prog)
        kinds = {
            i.store_kind
            for i in prog.instructions()
            if i.op is Opcode.ST
        }
        assert StoreKind.SPILL in kinds

    def test_spill_slots_use_stack_pointer(self):
        prog = _pressure_program(12, small_rf=True)
        allocate_registers(prog)
        sp = prog.register_file.stack_pointer
        spill_stores = [
            i
            for i in prog.instructions()
            if i.op is Opcode.ST and i.store_kind is StoreKind.SPILL
        ]
        assert spill_stores
        assert all(i.srcs[1] == sp for i in spill_stores)

    def test_scratch_registers_reserved(self):
        prog = _pressure_program(12, small_rf=True)
        allocate_registers(prog)
        scratch = set(scratch_registers(prog.register_file))
        # Scratch registers only appear in spill sequences: every value
        # they carry is defined and consumed within a few instructions.
        for block in prog.blocks:
            live: set = set()
            for instr in reversed(block.instructions):
                if instr.dest in scratch:
                    live.discard(instr.dest)
                live.update(s for s in instr.srcs if s in scratch)
            assert not live  # never live into a block


def _weighted_program():
    """One write-hot register and one read-hot register under pressure."""
    rf = RegisterFile(num_registers=8, reserved=(0, 7))
    b = ProgramBuilder("weights", register_file=rf)
    b.begin_block("entry")
    base = b.li(0x100)
    n = b.li(30)
    write_hot = b.li(0)
    read_hot = b.li(5)
    extra = [b.li(k) for k in range(2)]
    i = b.li(0)
    b.jmp("loop")
    b.begin_block("loop")
    t = b.add(read_hot, read_hot)
    b.add(write_hot, t, dest=write_hot)  # write-hot: RMW each iteration
    b.addi(i, 1, dest=i)
    b.blt(i, n, "loop", "exit")
    b.begin_block("exit")
    for k, v in enumerate(extra):
        b.store(v, base, offset=16 + 4 * k)
    b.store(write_hot, base)
    b.store(read_hot, base, offset=4)
    b.ret()
    return b.finish(), write_hot


class TestStoreAwarePolicy:
    def test_write_factor_constant_sensible(self):
        assert STORE_AWARE_WRITE_FACTOR > 1

    def test_store_aware_reduces_spill_stores_on_workload(self):
        from repro.workloads.suites import load_workload

        wl = load_workload("CPU2006.gemsfdtd")
        normal = wl.program.copy()
        aware = wl.program.copy()
        n_stats = allocate_registers(normal, store_aware=False)
        a_stats = allocate_registers(aware, store_aware=True)
        assert a_stats.spill_stores < n_stats.spill_stores
        # Allocation quality is maintained: similar spill counts.
        assert a_stats.spilled <= n_stats.spilled + 2

    def test_store_aware_semantics_preserved(self):
        from repro.workloads.suites import load_workload

        wl = load_workload("CPU2006.zeusmp")
        golden = execute(wl.program, wl.fresh_memory()).memory.data_image()
        prog = wl.program.copy()
        allocate_registers(prog, store_aware=True)
        got = execute(prog, wl.fresh_memory()).memory.data_image()
        assert got == golden


class TestEdgeCases:
    def test_tiny_register_file_rejected(self):
        rf = RegisterFile(num_registers=5, reserved=(0, 4))
        b = ProgramBuilder("tiny", register_file=rf)
        b.begin_block("entry")
        b.li(1)
        b.ret()
        prog = b.finish()
        with pytest.raises(ValueError):
            allocate_registers(prog)

    def test_instruction_with_two_spilled_sources(self):
        rf = RegisterFile(num_registers=12, reserved=(0, 11))
        b = ProgramBuilder("two", register_file=rf)
        b.begin_block("entry")
        base = b.li(0x100)
        vals = [b.li(k) for k in range(10)]
        s = b.add(vals[0], vals[1])
        for v in vals[2:]:
            s = b.add(s, v)
        # Force a fresh use of two early values late in the program.
        t = b.add(vals[0], vals[1])
        b.store(s, base)
        b.store(t, base, offset=4)
        b.ret()
        golden = _image(b.program.copy())
        prog = b.finish()
        allocate_registers(prog)
        assert _image(prog) == golden
