"""End-to-end ECC decode semantics in the fault injector.

Three contracts:

* **Reachability** — with a plain SEC code and adjacent-double upsets,
  miscorrections substitute the wrong value and the new
  ``miscorrected`` outcome is actually produced by real campaigns.
* **Equivalence** — SEC-DED over the default single/double generator
  classifies byte-for-byte like the abstract parity fail-safe it
  replaces (single -> corrected, double -> detected halt).
* **Byte-identity** — ECC-off campaigns serialize exactly as before:
  no ``ecc``/``upset`` keys in the spec dict, no ``miscorrected`` key
  in the zero-filled histograms, identical rng draw order.
"""

from __future__ import annotations

import json

import pytest

from repro.compiler.config import turnpike_config
from repro.compiler.pipeline import compile_program
from repro.faults.campaign import CampaignRunner, CampaignSpec
from repro.faults.injector import (
    LEGACY_KINDS,
    FaultOutcomeKind,
    injection_for_index,
)
from repro.harness.sweep import fan_campaign_codes
from repro.workloads.suites import load_workload

UID = "SPLASH3.radix"


def _spec(**overrides) -> CampaignSpec:
    base = dict(
        uid=UID,
        wcdl=10,
        count=12,
        seed=99,
        targets=("store_buffer", "checkpoint"),
        variants=("turnpike",),
        shard_size=6,
    )
    base.update(overrides)
    return CampaignSpec(**base)


@pytest.fixture(scope="module")
def compiled():
    return compile_program(load_workload(UID).program, turnpike_config())


class TestSpecValidation:
    def test_unknown_ecc_rejected(self):
        with pytest.raises(ValueError, match="unknown code"):
            _spec(ecc="golay")

    def test_unknown_upset_rejected(self):
        with pytest.raises(ValueError, match="unknown upset pattern"):
            _spec(upset="burst99")

    def test_ecc_off_dict_has_no_new_keys(self):
        data = _spec().to_dict()
        assert "ecc" not in data
        assert "upset" not in data

    def test_ecc_spec_round_trips(self):
        spec = _spec(ecc="sec", upset="adjacent-double")
        data = spec.to_dict()
        assert data["ecc"] == "sec"
        assert data["upset"] == "adjacent-double"
        assert CampaignSpec.from_dict(data) == spec

    def test_miscorrected_sits_outside_legacy_kinds(self):
        assert FaultOutcomeKind.MISCORRECTED.value == "miscorrected"
        assert FaultOutcomeKind.MISCORRECTED not in LEGACY_KINDS
        assert set(LEGACY_KINDS) < set(FaultOutcomeKind)


class TestInjectionShapes:
    def test_upset_pattern_shapes_the_flip_set(self, compiled):
        for index in range(16):
            injection = injection_for_index(
                compiled, 10, 42, index, horizon=500,
                upset="adjacent-double",
            )
            # ``bits`` carries the whole flip set (bit included) exactly
            # like the classic double-flip encoding.
            positions = sorted(injection.bits)
            assert len(positions) == 2
            assert injection.bit == positions[0]
            assert positions[1] - positions[0] == 1

    def test_no_upset_keeps_historical_draws(self, compiled):
        for index in range(16):
            classic = injection_for_index(compiled, 10, 42, index, 500)
            explicit = injection_for_index(
                compiled, 10, 42, index, 500, upset=None
            )
            assert classic == explicit


@pytest.fixture(scope="module")
def baseline_report():
    return CampaignRunner(_spec()).run()


@pytest.fixture(scope="module")
def sec_report():
    return CampaignRunner(
        _spec(ecc="sec", upset="adjacent-double")
    ).run()


class TestRealDecodeCampaigns:
    def test_sec_under_adjacent_double_miscorrects(self, sec_report):
        histogram = sec_report.per_variant()["turnpike"]
        assert histogram["miscorrected"] > 0
        assert histogram["protocol_bug"] == 0
        assert histogram["timeout"] == 0

    def test_secded_matches_abstract_baseline(self, baseline_report):
        """The default generator strikes singles and occasional doubles;
        SEC-DED corrects the former and detects the latter — exactly the
        abstract fail-safe's taxonomy."""
        report = CampaignRunner(_spec(ecc="secded")).run()
        protected = report.per_variant()["turnpike"]
        assert protected.pop("miscorrected") == 0
        assert protected == baseline_report.per_variant()["turnpike"]

    def test_ecc_off_histograms_have_no_miscorrected_key(
        self, baseline_report
    ):
        histogram = baseline_report.per_variant()["turnpike"]
        assert "miscorrected" not in histogram
        assert set(histogram) == {k.value for k in LEGACY_KINDS}
        per_target = baseline_report.per_target()
        for variants in per_target.values():
            for kinds in variants.values():
                assert "miscorrected" not in kinds

    def test_ecc_aggregate_json_carries_the_mode(self, sec_report):
        payload = json.loads(sec_report.to_json())
        assert payload["spec"]["ecc"] == "sec"
        assert payload["spec"]["upset"] == "adjacent-double"

    def test_ecc_off_json_is_free_of_ecc_keys(self, baseline_report):
        payload = json.loads(baseline_report.to_json())
        assert "ecc" not in payload["spec"]
        assert "upset" not in payload["spec"]
        assert "miscorrected" not in json.dumps(payload)


class TestCodeAxisFan:
    def test_fan_dedups_in_order(self):
        spec = _spec()
        fanned = fan_campaign_codes(
            spec, ("off", "parity", "none", "sec", "parity")
        )
        assert [label for label, _ in fanned] == ["off", "parity", "sec"]
        assert fanned[0][1] is spec  # the control point is the input spec
        assert fanned[1][1].ecc == "parity"

    def test_fan_rejects_unknown_codes(self):
        with pytest.raises(ValueError, match="unknown code"):
            fan_campaign_codes(_spec(), ("golay",))
        with pytest.raises(ValueError, match="code axis is empty"):
            fan_campaign_codes(_spec(), ())

    def test_fanned_specs_share_the_strike_plan(self):
        spec = _spec()
        fanned = dict(fan_campaign_codes(spec, ("off", "secded")))
        assert fanned["secded"].seed == spec.seed
        assert fanned["secded"].count == spec.count
        assert fanned["secded"].upset == spec.upset
