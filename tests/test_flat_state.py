"""Flat machine state: the dense register file vs the dict-state model.

The gen-2 machine keeps registers in a flat list (``RegFile.vals``)
indexed by register number instead of a ``dict[Reg, int]``. This suite
pins the equivalence that rewrite relies on:

* property tests drive a :class:`RegFile` and a plain sparse dict model
  through the same operation sequences — reads with absent-means-zero,
  writes, clears, and the fault-injection corrupt hook (wrap32 of an
  XOR mask) — and require field-for-field agreement throughout;
* the snapshot field audit still covers every machine attribute, and a
  snapshot taken mid-run *with outstanding fault state* restores to
  full-state canonical equality and an identical continuation;
* a forced mid-region register upset must detect, recover (rebuilding
  the flat register file in place from checkpoint bindings), and
  re-execute to a final memory image bit-identical to the fault-free
  interpreter reference.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from helpers import build_sum_loop
from repro.compiler.config import turnpike_config
from repro.compiler.pipeline import compile_program
from repro.faults.campaign import VARIANT_CONFIGS
from repro.faults.injector import golden_memory
from repro.faults.snapshot import full_state_canonical
from repro.isa.registers import Reg
from repro.runtime.machine import (
    Injection,
    InjectionTarget,
    RegFile,
    ResilientMachine,
)
from repro.runtime.memory import Memory, wrap32

NUM_REGS = 32


@pytest.fixture(scope="module")
def ctx():
    compiled = compile_program(build_sum_loop(), turnpike_config())
    memory = Memory()
    golden = golden_memory(compiled, memory)
    return compiled, memory, golden


def _turnpike(wcdl: int = 10):
    return VARIANT_CONFIGS["turnpike"](wcdl)


# ---------------------------------------------------------------------------
# RegFile vs sparse-dict model
# ---------------------------------------------------------------------------

_value = st.integers(-(2**31), 2**31 - 1)
_index = st.integers(0, NUM_REGS - 1)

_op = st.one_of(
    st.tuples(st.just("set"), _index, _value),
    st.tuples(st.just("get"), _index, st.just(0)),
    st.tuples(st.just("corrupt"), _index, st.integers(0, 2**32 - 1)),
    st.tuples(st.just("clear"), st.just(0), st.just(0)),
)

_SETTINGS = settings(
    max_examples=120,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestRegFileModel:
    @given(st.lists(_op, max_size=40))
    @_SETTINGS
    def test_operation_sequence_matches_dict_model(self, ops):
        rf = RegFile(NUM_REGS)
        model: dict[int, int] = {}
        for kind, idx, arg in ops:
            reg = Reg.phys(idx)
            if kind == "set":
                rf[reg] = arg
                model[idx] = arg
            elif kind == "get":
                assert rf.get(reg, 0) == model.get(idx, 0)
                assert rf[reg] == model.get(idx, 0)
            elif kind == "corrupt":
                # The REGISTER fault hook: wrap32 of an XOR with the
                # event's bit mask, exactly as _maybe_inject applies it.
                rf.vals[idx] = wrap32(rf.vals[idx] ^ arg)
                model[idx] = wrap32(model.get(idx, 0) ^ arg)
            else:
                rf.clear()
                model.clear()
            # Field-for-field agreement after every step.
            assert rf.as_index_dict() == {
                i: model.get(i, 0) for i in range(NUM_REGS)
            }
        assert dict(rf.items()) == {
            Reg.phys(i): model.get(i, 0) for i in range(NUM_REGS)
        }

    @given(st.dictionaries(_index, _value, max_size=NUM_REGS))
    @_SETTINGS
    def test_index_dict_roundtrip(self, sparse):
        """load_index_dict accepts sparse dicts (old snapshot format) and
        as_index_dict gives back the dense equivalent."""
        rf = RegFile(NUM_REGS)
        rf.vals[3] = 77  # stale state that load must clear
        rf.load_index_dict(sparse)
        assert rf.as_index_dict() == {
            i: sparse.get(i, 0) for i in range(NUM_REGS)
        }
        other = RegFile(NUM_REGS)
        other.load_index_dict(rf.as_index_dict())
        assert other.as_index_dict() == rf.as_index_dict()
        assert other.vals == rf.vals

    def test_vals_identity_is_stable(self):
        """The run loop binds ``vals`` once; every mutator must keep the
        list object itself alive."""
        rf = RegFile(NUM_REGS)
        vals = rf.vals
        rf[Reg.phys(4)] = 9
        rf.clear()
        rf.load_index_dict({1: 2})
        assert rf.vals is vals
        assert vals[1] == 2


# ---------------------------------------------------------------------------
# Machine-level: corrupt hook, field audit, snapshot with fault state
# ---------------------------------------------------------------------------


class TestCorruptHookEquivalence:
    @given(
        idx=st.integers(1, NUM_REGS - 1),
        bits=st.sets(st.integers(0, 31), min_size=1, max_size=3),
        values=st.lists(_value, min_size=NUM_REGS, max_size=NUM_REGS),
    )
    @_SETTINGS
    def test_register_strike_matches_dict_model(self, idx, bits, values, ctx):
        compiled, memory, _ = ctx
        machine = ResilientMachine(compiled, _turnpike(), memory.copy())
        model: dict[int, int] = {}
        for i, v in enumerate(values):
            machine.regs[Reg.phys(i)] = v
            model[i] = v
        inj = Injection(
            time=5,
            target=InjectionTarget.REGISTER,
            reg=Reg.phys(idx),
            bits=tuple(sorted(bits)),
        )
        machine.arm_injection(inj)
        machine._maybe_inject(5)
        mask = 0
        for b in bits:
            mask |= 1 << b
        model[idx] = wrap32(model[idx] ^ mask)
        assert machine.regs.as_index_dict() == model
        assert machine._detection_due == 5
        assert Reg.phys(idx) in machine._tainted_regs


class TestFieldAudit:
    def test_every_field_is_classified(self, ctx):
        """Both directions: no machine attribute escapes classification,
        and every declared snapshot field actually exists post-run."""
        compiled, memory, _ = ctx
        machine = ResilientMachine(compiled, _turnpike(), memory.copy())
        machine.run()
        fields = ResilientMachine._SNAPSHOT_FIELDS
        excluded = ResilientMachine._SNAPSHOT_EXCLUDED
        assert not (fields & excluded)
        attrs = set(vars(machine))
        assert attrs <= (fields | excluded)
        assert fields <= attrs
        # _next_due is derived state and must be excluded, not captured.
        assert "_next_due" in excluded


class TestSnapshotWithFaultState:
    def test_mid_fault_snapshot_restores_exactly(self, ctx):
        """Snapshot taken between strike and detection: the restored
        machine is canonically identical and continues to the same end."""
        compiled, memory, golden = ctx
        config = _turnpike()
        strike_t = 40
        snap_t = strike_t + 3
        captured = []

        # Run once, snapshotting mid-fault-window from the live machine.
        m = ResilientMachine(compiled, config, memory.copy())
        m.arm_injection(
            Injection(
                time=strike_t,
                target=InjectionTarget.REGISTER,
                reg=Reg.phys(3),
                bit=7,
                detection_delay=8,
            )
        )

        def live_hook(label, pc, t, steps):
            if t == snap_t and not captured:
                captured.append(m.snapshot(label, pc, t, steps))

        m._on_tick = live_hook
        stats = m.run()
        m._on_tick = None
        assert captured, "snapshot hook never fired"
        snap = captured[0]
        # Fault state must be present in the capture window.
        assert snap.detection_due is not None or snap.tainted_regs

        restored = ResilientMachine(compiled, config, memory.copy())
        restored.restore(snap)
        probe = ResilientMachine(compiled, config, memory.copy())
        probe.restore(snap)
        assert full_state_canonical(restored, snap.t) == \
            full_state_canonical(probe, snap.t)
        r_stats = restored.run()
        assert restored.mem.data_image() == m.mem.data_image()
        assert r_stats.committed == stats.committed
        assert r_stats.recoveries == stats.recoveries


class TestMidRegionRecovery:
    @pytest.mark.parametrize("strike_t", [17, 41, 73])
    def test_forced_mid_region_strike_reexecutes_bit_identically(
        self, strike_t, ctx
    ):
        """The paper's core guarantee, through the flat register file:
        a detected upset rolls back (rebuilding ``vals`` in place from
        checkpoint bindings) and re-executes to the golden image."""
        compiled, memory, golden = ctx
        machine = ResilientMachine(compiled, _turnpike(), memory.copy())
        machine.arm_injection(
            Injection(
                time=strike_t,
                target=InjectionTarget.REGISTER,
                reg=Reg.phys(2),
                bit=13,
                detection_delay=4,
            )
        )
        stats = machine.run()
        assert stats.recoveries >= 1
        assert machine.mem.data_image() == golden
