"""Fabric integration tests: a real coordinator + worker subprocesses
driven through the CLI and :class:`ServiceClient`.

The acceptance-critical properties:

* a campaign distributed across worker nodes produces stdout and an
  exported aggregate **byte-identical** to the direct single-process
  CLI;
* SIGKILLing a worker mid-campaign does not change that — the
  coordinator re-dispatches or computes the missing shards locally;
* with zero workers the coordinator degrades to local execution;
* ``repro nodes`` reports the fabric roster.

(The full chaos scenario — repeated kills, partitions, coordinator
restart — lives in ``repro.service.chaos`` and runs in its own CI job;
these tests keep the per-commit loop fast.)
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.service.client import ServiceClient

SRC = str(Path(__file__).resolve().parent.parent / "src")
INJECT_ARGS = [
    "SPLASH3.radix", "--count", "12", "--seed", "7",
    "--targets", "register", "--variants", "turnpike,unsafe",
    "--shard-size", "2",
]
INJECT_SPEC = {
    "uid": "SPLASH3.radix", "count": 12, "seed": 7,
    "targets": "register", "variants": "turnpike,unsafe", "shard_size": 2,
}


def _env(cache_dir: Path) -> dict[str, str]:
    env = os.environ.copy()
    env["PYTHONPATH"] = SRC
    env["REPRO_CACHE_DIR"] = str(cache_dir)
    env.pop("REPRO_SERVICE", None)
    return env


def _cli(env, *argv, check=True, timeout=300):
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True,
        env=env,
        timeout=timeout,
    )
    if check:
        assert proc.returncode == 0, proc.stderr.decode()
    return proc


class FabricProc:
    """One ``repro serve`` role in its own process group."""

    def __init__(self, journal: Path, env: dict, *extra: str):
        self.journal = journal
        (journal / "endpoint").unlink(missing_ok=True)
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--journal", str(journal), "--port", "0", *extra,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            start_new_session=True,
        )
        deadline = time.monotonic() + 30
        endpoint = journal / "endpoint"
        while not endpoint.exists():
            if self.proc.poll() is not None:
                raise AssertionError(
                    "server died: " + self.proc.stderr.read().decode()
                )
            if time.monotonic() > deadline:
                raise AssertionError("server never wrote its endpoint file")
            time.sleep(0.05)

    def client(self, name="ftest") -> ServiceClient:
        return ServiceClient(journal_dir=str(self.journal), client_name=name)

    def kill9(self):
        os.killpg(os.getpgid(self.proc.pid), signal.SIGKILL)
        self.proc.wait(timeout=30)

    def reap(self):
        if self.proc.poll() is None:
            try:
                os.killpg(os.getpgid(self.proc.pid), signal.SIGKILL)
            except OSError:
                pass
            try:
                self.proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                pass


def start_coordinator(root: Path, env, workers=1) -> FabricProc:
    return FabricProc(
        root / "coordinator", env,
        "--role", "coordinator", "--workers", str(workers),
        "--node-timeout", "3.0", "--steal-after", "30.0",
        "--lease-timeout", "120.0",
    )


def start_worker(root: Path, env, idx: int, workers=1) -> FabricProc:
    return FabricProc(
        root / f"worker{idx}", env,
        "--role", "worker", "--workers", str(workers),
        "--coordinator-journal", str(root / "coordinator"),
        "--node-id", f"w{idx}", "--heartbeat-interval", "0.2",
    )


def wait_live_nodes(client: ServiceClient, want: int, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        nodes = client.request("GET", "/nodes")["nodes"]
        if sum(1 for n in nodes if n["state"] == "live") >= want:
            return nodes
        time.sleep(0.1)
    raise AssertionError(f"never saw {want} live node(s): {nodes}")


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("fabric-cache")


def test_distributed_campaign_byte_parity_and_nodes_cli(tmp_path, cache_dir):
    env = _env(cache_dir)
    procs = []
    try:
        coord = start_coordinator(tmp_path, env)
        procs.append(coord)
        for idx in (1, 2):
            procs.append(start_worker(tmp_path, env, idx))

        client = coord.client()
        wait_live_nodes(client, 2)

        # `repro nodes` sees the roster, as a table and as JSON.
        journal = ["--journal", str(coord.journal)]
        table = _cli(env, "nodes", *journal).stdout.decode()
        assert "w1" in table and "w2" in table and "live" in table
        listing = json.loads(_cli(env, "nodes", *journal, "--json").stdout)
        assert {n["id"] for n in listing["nodes"]} == {"w1", "w2"}

        job, _ = client.submit("inject", INJECT_SPEC)
        done = client.wait(job["id"], timeout=240)
        assert done["state"] == "done", done
        result = client.result(job["id"])["result"]
        assert result["exit_code"] == 0

        direct_export = tmp_path / "direct.json"
        direct = _cli(
            env, "inject", *INJECT_ARGS, "--export", str(direct_export),
        )
        assert result["stdout"].encode() == direct.stdout  # byte-for-byte
        service_export = coord.journal / "exports" / f"{done['key']}.json"
        assert service_export.read_bytes() == direct_export.read_bytes()

        fabric = client.metrics()["fabric"]
        assert fabric["role"] == "coordinator"
        assert fabric["live_nodes"] == 2
        assert fabric["local_fallback"] == 0
    finally:
        for proc in procs:
            proc.reap()


def test_worker_kill9_mid_campaign_still_byte_identical(
    tmp_path, tmp_path_factory
):
    # Cold cache on purpose: leases must be slow enough that the kill
    # lands mid-campaign (the golden-run build provides the window).
    cache = tmp_path_factory.mktemp("cold-cache")
    env = _env(cache)
    procs = []
    try:
        coord = start_coordinator(tmp_path, env)
        procs.append(coord)
        workers = [start_worker(tmp_path, env, idx) for idx in (1, 2)]
        procs.extend(workers)

        client = coord.client()
        wait_live_nodes(client, 2)
        job, _ = client.submit("inject", INJECT_SPEC)

        # Wait until any lease manifest shows progress, then pull the
        # plug on one worker.
        store = coord.journal / "manifests"
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if any(store.glob("*.json")):
                break
            if client.job(job["id"])["state"] == "done":
                break  # campaign outran us; parity check still stands
            time.sleep(0.05)
        workers[0].kill9()

        done = client.wait(job["id"], timeout=240)
        assert done["state"] == "done", done
        result = client.result(job["id"])["result"]

        direct_export = tmp_path / "direct.json"
        direct = _cli(
            env, "inject", *INJECT_ARGS, "--export", str(direct_export),
        )
        assert result["stdout"].encode() == direct.stdout
        service_export = coord.journal / "exports" / f"{done['key']}.json"
        assert service_export.read_bytes() == direct_export.read_bytes()
    finally:
        for proc in procs:
            proc.reap()


def test_zero_workers_degrades_to_local(tmp_path, cache_dir):
    env = _env(cache_dir)
    coord = start_coordinator(tmp_path, env, workers=2)
    try:
        client = coord.client()
        job, _ = client.submit("inject", INJECT_SPEC)
        done = client.wait(job["id"], timeout=240)
        assert done["state"] == "done", done
        assert client.result(job["id"])["result"]["exit_code"] == 0
        fabric = client.metrics()["fabric"]
        assert fabric["local_fallback"] >= 1
        assert fabric["live_nodes"] == 0
    finally:
        coord.reap()
