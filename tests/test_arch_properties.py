"""Property-based tests (hypothesis) for the microarchitectural models.

Three structures carry the resilience protocol's correctness burden and
get randomized invariant checks here:

* the gated store buffer — occupancy never exceeds capacity under the
  timing model, releases drain in FIFO order, forwarding returns the
  youngest matching value;
* the committed load queue — the compact range design is *conservative*
  with respect to the ideal address-matching design (it may quarantine
  more, never less) and respects its entry bound;
* hardware coloring — the per-register color pool is conserved: at any
  point the free list, in-flight UC assignments, and the verified color
  partition exactly the ``num_colors`` distinct locations.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.arch.clq import CompactCLQ, IdealCLQ
from repro.arch.coloring import QUARANTINE, ColorMaps
from repro.arch.store_buffer import (
    FunctionalStoreBuffer,
    SBEntry,
    TimingStoreBuffer,
)

_SETTINGS = settings(max_examples=100, deadline=None)


# ---------------------------------------------------------------------------
# Timing store buffer
# ---------------------------------------------------------------------------


@_SETTINGS
@given(
    capacity=st.integers(1, 8),
    stores=st.lists(
        st.tuples(st.integers(0, 3), st.integers(1, 30)), max_size=40
    ),
)
def test_timing_sb_occupancy_bounded(capacity, stores):
    """allocation_time + push never leaves more than ``capacity`` live."""
    sb = TimingStoreBuffer(capacity)
    now = 0.0
    for gap, lifetime in stores:
        now += gap
        when, stalled = sb.allocation_time(now)
        assert when >= now
        assert not stalled  # all releases in this test are finite
        sb.push(when + lifetime, instance=0)
        assert sb.occupancy() <= capacity
        now = when


@_SETTINGS
@given(
    n_open=st.integers(1, 8),
    n_closed=st.integers(0, 4),
    base=st.integers(0, 100),
    interval=st.integers(1, 5),
)
def test_timing_sb_fifo_release_order(n_open, n_closed, base, interval):
    """set_instance_release drains the open region's entries in push
    order, one per drain interval, leaving other instances untouched."""
    sb = TimingStoreBuffer(capacity=64)
    for i in range(n_closed):
        sb.push(float(i), instance=7, addr=i)
    for i in range(n_open):
        sb.push(float("inf"), instance=1, addr=100 + i)
    sb.set_instance_release(1, float(base), drain_interval=float(interval))
    mine = [e for e in sb.entries if e[1] == 1]
    others = [e for e in sb.entries if e[1] != 1]
    assert [e[0] for e in mine] == [
        float(base + k * interval) for k in range(n_open)
    ]
    assert [e[0] for e in mine] == sorted(e[0] for e in mine)
    assert [e[0] for e in others] == [float(i) for i in range(n_closed)]


@_SETTINGS
@given(
    entries=st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 7), st.integers(-50, 50)),
        max_size=30,
    ),
    probe=st.integers(0, 7),
)
def test_functional_sb_forwarding_youngest(entries, probe):
    """forward() returns the value of the youngest regular store, and
    release_instance preserves FIFO order within an instance."""
    sb = FunctionalStoreBuffer()
    youngest: dict[int, int] = {}
    by_instance: dict[int, list[int]] = {}
    for serial, (instance, addr, value) in enumerate(entries):
        sb.push(
            SBEntry(
                instance=instance,
                is_checkpoint=False,
                addr=addr,
                reg=-1,
                color=-1,
                value=value,
            )
        )
        youngest[addr] = value
        by_instance.setdefault(instance, []).append(value)
    assert sb.forward(probe) == youngest.get(probe)

    for instance, expected_values in by_instance.items():
        released = sb.release_instance(instance)
        assert [e.value for e in released] == expected_values
        assert all(e.instance == instance for e in released)
    assert sb.occupancy() == 0
    assert sb.release_instance(0) == []


@_SETTINGS
@given(
    entries=st.lists(
        st.tuples(st.booleans(), st.integers(0, 7), st.integers(-50, 50)),
        max_size=20,
    ),
    probe=st.integers(0, 7),
)
def test_functional_sb_checkpoints_never_forward(entries, probe):
    sb = FunctionalStoreBuffer()
    expected = None
    for is_ckpt, addr, value in entries:
        sb.push(
            SBEntry(
                instance=0,
                is_checkpoint=is_ckpt,
                addr=addr if not is_ckpt else -1,
                reg=addr if is_ckpt else -1,
                color=0 if is_ckpt else -1,
                value=value,
            )
        )
        if not is_ckpt and addr == probe:
            expected = value
    assert sb.forward(probe) == expected


# ---------------------------------------------------------------------------
# Committed load queue: compact is conservative w.r.t. ideal
# ---------------------------------------------------------------------------

# An op is (action, addr): action 0 = record_load, 1 = store_has_war,
# 2 = close current region and open the next.
_clq_ops = st.lists(
    st.tuples(st.integers(0, 2), st.integers(0, 63)), max_size=60
)


@_SETTINGS
@given(ops=_clq_ops, size=st.integers(1, 4), recycle=st.booleans())
def test_compact_clq_conservative_vs_ideal(ops, size, recycle):
    """Whenever the ideal CLQ reports a WAR conflict, the compact CLQ
    must as well (a missed conflict would release an unsafe store)."""
    ideal = IdealCLQ()
    compact = CompactCLQ(size=size, recycle=recycle)
    instance = 0
    ideal.begin_region(instance)
    compact.begin_region(instance)
    for action, addr in ops:
        if action == 0:
            ideal.record_load(instance, addr)
            compact.record_load(instance, addr)
        elif action == 1:
            ideal_war = ideal.store_has_war(instance, addr)
            compact_war = compact.store_has_war(instance, addr)
            if ideal_war:
                assert compact_war
        else:
            ideal.retire_region(instance)
            # The compact design keeps closed-region entries resident
            # until verification; only the ideal retires eagerly here,
            # which can only make the compact side *more* conservative.
            instance += 1
            ideal.begin_region(instance)
            compact.begin_region(instance)
        assert len(compact._entries) <= size
    assert compact.stats.occupancy_max <= size


@_SETTINGS
@given(ops=_clq_ops)
def test_ideal_clq_exact(ops):
    """The ideal CLQ is exact: WAR iff the address was loaded."""
    clq = IdealCLQ()
    clq.begin_region(0)
    loaded: set[int] = set()
    for action, addr in ops:
        if action == 0:
            clq.record_load(0, addr)
            loaded.add(addr)
        elif action == 1:
            assert clq.store_has_war(0, addr) == (addr in loaded)


# ---------------------------------------------------------------------------
# Hardware coloring: pool conservation
# ---------------------------------------------------------------------------


def _check_pool_invariant(maps: ColorMaps) -> None:
    """Each touched register's colors partition range(num_colors)."""
    touched = set(maps._ac)
    for uc in maps._uc.values():
        touched.update(uc)
    touched.update(maps._vc)
    for reg in touched:
        held = list(maps._ac.get(reg, range(maps.num_colors)))
        for uc in maps._uc.values():
            color = uc.get(reg)
            if color is not None and color != QUARANTINE:
                held.append(color)
        vc = maps._vc.get(reg)
        if vc is not None and vc != QUARANTINE:
            held.append(vc)
        assert sorted(held) == list(range(maps.num_colors)), (
            f"register {reg}: pool {sorted(held)} is not a permutation"
        )


# An op is (action, reg): action 0 = assign in the open region,
# 1 = verify the oldest open region, 2 = discard all open regions
# (recovery), 3 = open the next region.
_color_ops = st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 5)), max_size=60
)


@_SETTINGS
@given(ops=_color_ops, num_colors=st.integers(1, 4))
def test_coloring_pool_conservation(ops, num_colors):
    maps = ColorMaps(num_registers=8, num_colors=num_colors)
    open_instances: list[int] = [0]
    next_instance = 1
    for action, reg in ops:
        if action == 0:
            color = maps.assign(open_instances[-1], reg)
            assert color == QUARANTINE or 0 <= color < num_colors
        elif action == 1 and open_instances:
            maps.verify(open_instances.pop(0))
        elif action == 2 and open_instances:
            maps.discard(open_instances)
            open_instances = []
        elif action == 3:
            open_instances.append(next_instance)
            next_instance += 1
        if not open_instances:
            open_instances = [next_instance]
            next_instance += 1
        _check_pool_invariant(maps)


@_SETTINGS
@given(
    regs=st.lists(st.integers(0, 3), min_size=1, max_size=30),
    num_colors=st.integers(1, 4),
)
def test_coloring_exhaustion_quarantines(regs, num_colors):
    """Across concurrent regions, a register yields at most num_colors
    distinct fast colors; further demands fall back to QUARANTINE."""
    maps = ColorMaps(num_registers=4, num_colors=num_colors)
    per_reg_colors: dict[int, set[int]] = {}
    for instance, reg in enumerate(regs):
        color = maps.assign(instance, reg)  # every region distinct
        if color != QUARANTINE:
            colors = per_reg_colors.setdefault(reg, set())
            assert color not in colors, "double-allocated a live color"
            colors.add(color)
            assert len(colors) <= num_colors
        else:
            assert len(per_reg_colors.get(reg, set())) == num_colors
    _check_pool_invariant(maps)


# ---------------------------------------------------------------------------
# Fault sequences: strikes degrade conservatively, never unsafely
# ---------------------------------------------------------------------------


@_SETTINGS
@given(
    entries=st.lists(st.integers(-50, 50), min_size=1, max_size=10),
    victim=st.integers(0, 9),
    bits=st.lists(st.integers(0, 31), min_size=1, max_size=3),
)
def test_functional_sb_corruption_marks_parity(entries, victim, bits):
    """corrupt_entry flips value bits and clears parity without changing
    occupancy or entry order — the drain path owns detection."""
    sb = FunctionalStoreBuffer()
    for i, value in enumerate(entries):
        sb.push(
            SBEntry(
                instance=0, is_checkpoint=False, addr=i, reg=-1, color=-1,
                value=value,
            )
        )
    victim %= len(entries)
    sb.corrupt_entry(victim, *bits)
    assert sb.occupancy() == len(entries)
    struck = sb.entries[victim]
    assert not struck.parity_ok
    expected = entries[victim]
    for b in bits:
        expected ^= 1 << b
    assert struck.value == expected
    assert all(
        e.parity_ok for i, e in enumerate(sb.entries) if i != victim
    )


@_SETTINGS
@given(
    ops=_clq_ops,
    size=st.integers(1, 4),
    ideal=st.booleans(),
    bit=st.integers(0, 63),
    probes=st.lists(st.integers(0, 63), max_size=8),
)
def test_clq_corruption_is_conservative(ops, size, ideal, bit, probes):
    """After an SEU on a populated CLQ entry, the struck instance must
    answer every WAR query with a conflict (parity fail-safe): a strike
    can disable fast release but never green-light an unsafe one."""
    clq = IdealCLQ() if ideal else CompactCLQ(size=size)
    clq.begin_region(0)
    for action, addr in ops:
        if action == 0:
            clq.record_load(0, addr)
    before = clq.stats.parity_conservative
    if not clq.corrupt(bit):
        return  # nothing populated: no strike landed
    for addr in probes:
        assert clq.store_has_war(0, addr)
    if probes:
        assert clq.stats.parity_conservative == before + len(probes)


@_SETTINGS
@given(
    assigns=st.lists(st.integers(0, 3), min_size=1, max_size=10),
    bit=st.integers(0, 63),
    reg=st.integers(0, 3),
)
def test_coloring_corruption_poisons_to_quarantine(assigns, bit, reg):
    """A strike on the AC/UC/VC maps degrades every later assignment to
    the store-buffer quarantine path — no post-strike fast release."""
    maps = ColorMaps(num_registers=4, num_colors=2)
    for instance, r in enumerate(assigns):
        maps.assign(instance, r)
    if not maps.corrupt(bit):
        return
    assert maps.parity_bad
    fallbacks_before = maps.stats.parity_fallbacks
    assert maps.assign(len(assigns), reg) == QUARANTINE
    assert maps.poisoned
    assert maps.stats.parity_fallbacks == fallbacks_before + 1
    assert maps.assign(len(assigns) + 1, reg) == QUARANTINE


@_SETTINGS
@given(reg=st.integers(0, 3), rounds=st.integers(1, 12))
def test_coloring_verify_recycles(reg, rounds):
    """Serial assign/verify rounds never exhaust the pool: the displaced
    verified color always returns to the free list."""
    maps = ColorMaps(num_registers=4, num_colors=2)
    for instance in range(rounds):
        color = maps.assign(instance, reg)
        assert color != QUARANTINE
        promoted = maps.verify(instance)
        assert promoted == {reg: color}
        _check_pool_invariant(maps)
