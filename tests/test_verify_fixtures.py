"""Each broken fixture trips exactly its intended rule.

"Trips" means at least one warning- or error-severity finding from the
target rule; "exactly" means no other rule reports at warning severity
or above on the same program (INFO advisories are allowed — e.g. R3
always summarises store classifications).
"""

from __future__ import annotations

import pytest

from repro.verify import Severity, verify_compiled

from fixtures import (
    five_colour_region,
    missing_checkpoint,
    over_capacity_region,
    scheduling_hazard,
    stale_recovery_map,
    war_hazard_store,
)

CASES = [
    (over_capacity_region, "R1", Severity.ERROR),
    (missing_checkpoint, "R2", Severity.ERROR),
    (war_hazard_store, "R3", Severity.WARNING),
    (five_colour_region, "R4", Severity.WARNING),
    (stale_recovery_map, "R5", Severity.ERROR),
    (scheduling_hazard, "R6", Severity.WARNING),
]


@pytest.mark.parametrize(
    "factory,rule,severity", CASES, ids=[c[1] for c in CASES]
)
def test_fixture_trips_exactly_its_rule(factory, rule, severity):
    report = verify_compiled(factory())
    flagged = [
        d
        for d in report.diagnostics
        if d.severity in (Severity.ERROR, Severity.WARNING)
    ]
    assert flagged, f"{rule} fixture produced no findings"
    assert {d.rule for d in flagged} == {rule}, (
        f"expected only {rule}, got: "
        + "; ".join(d.render() for d in flagged)
    )
    assert max(d.severity.rank for d in flagged) == severity.rank


@pytest.mark.parametrize(
    "factory,rule,severity", CASES, ids=[c[1] for c in CASES]
)
def test_fixture_findings_carry_locations_and_hints(factory, rule, severity):
    report = verify_compiled(factory())
    target = [
        d
        for d in report.by_rule(rule)
        if d.severity in (Severity.ERROR, Severity.WARNING)
    ]
    assert target
    for diag in target:
        assert diag.location.block, "rule findings should be block-anchored"
        assert diag.hint, "actionable findings should carry a fix hint"
