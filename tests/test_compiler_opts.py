"""Tests for LICM sinking, LIVM, strength reduction, and scheduling."""

from repro.compiler.checkpoints import count_checkpoints, insert_eager_checkpoints
from repro.compiler.licm import sink_checkpoints
from repro.compiler.livm import merge_induction_variables
from repro.compiler.regions import partition_regions
from repro.compiler.scheduling import schedule_program
from repro.compiler.strength import reduce_strength
from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import Opcode
from repro.runtime.interpreter import execute
from repro.runtime.memory import Memory


def _storefree_inner_loop():
    """Outer loop with stores, inner store-free loop updating an
    accumulator that lives across outer iterations (a running prefix) —
    the Figure 10 shape: the accumulator is live at the outer region
    boundary, so eager checkpointing pins a checkpoint inside the inner
    loop until LICM sinks it to the inner-loop exit."""
    b = ProgramBuilder("licm")
    b.begin_block("entry")
    o = b.li(0)
    on = b.li(3)
    base = b.li(0x200)
    acc = b.li(0)
    b.jmp("outer")
    b.begin_block("outer")
    j = b.li(0)
    jn = b.li(5)
    b.jmp("inner")
    b.begin_block("inner")
    b.add(acc, j, dest=acc)
    b.addi(j, 1, dest=j)
    b.blt(j, jn, "inner", "after")
    b.begin_block("after")
    off = b.shli(o, 2)
    addr = b.add(base, off)
    b.store(acc, addr)
    b.addi(o, 1, dest=o)
    b.blt(o, on, "outer", "exit")
    b.begin_block("exit")
    b.ret()
    return b.finish()


def _run_image(prog):
    return execute(prog, Memory()).memory.data_image()


class TestLicmSinking:
    def _compiled(self):
        prog = _storefree_inner_loop()
        from repro.compiler.checkpoints import predict_checkpoint_defs

        predicted = predict_checkpoint_defs(prog)
        partition_regions(
            prog, max_stores=2, predicted_ckpt_defs=predicted, licm_sinking=True
        )
        insert_eager_checkpoints(prog)
        return prog

    def test_sinks_out_of_storefree_loop(self):
        prog = self._compiled()
        golden = _run_image(_storefree_inner_loop())
        in_loop_before = sum(
            1 for i in prog.block("inner").instructions if i.is_checkpoint
        )
        assert in_loop_before > 0
        stats = sink_checkpoints(prog)
        assert stats.sunk >= in_loop_before
        assert not any(
            i.is_checkpoint for i in prog.block("inner").instructions
        )
        # Sunk checkpoints land at the loop exit, before its boundary,
        # tagged with the loop's region.
        after = prog.block("after")
        sunk = [
            i
            for i in after.instructions
            if i.is_checkpoint and i.annotations.get("licm_sunk")
        ]
        assert len(sunk) >= in_loop_before
        # Semantics unchanged.
        assert _run_image(prog) == golden

    def test_sunk_checkpoint_region_matches_loop(self):
        prog = self._compiled()
        loop_region = prog.block("inner").instructions[0].region_id
        sink_checkpoints(prog)
        after = prog.block("after")
        for instr in after.instructions:
            if instr.is_checkpoint and instr.annotations.get("licm_sunk"):
                assert instr.region_id == loop_region

    def test_loop_with_boundary_not_sunk(self, sum_loop):
        prog = sum_loop
        partition_regions(prog, max_stores=2)
        insert_eager_checkpoints(prog)
        before = [
            i.uid for i in prog.block("loop").instructions if i.is_checkpoint
        ]
        stats = sink_checkpoints(prog)
        after = [
            i.uid for i in prog.block("loop").instructions if i.is_checkpoint
        ]
        assert before == after  # boundary inside the loop blocks sinking
        assert stats.sunk == 0

    def test_same_block_dedup(self):
        b = ProgramBuilder("dd")
        b.begin_block("entry")
        base = b.li(0x100)
        x = b.li(1)
        b.addi(x, 1, dest=x)
        b.jmp("next")
        b.begin_block("next")
        b.store(x, base)
        b.ret()
        prog = b.finish()
        partition_regions(prog, max_stores=4)
        insert_eager_checkpoints(prog)
        # Manually duplicate a checkpoint to exercise dedup.
        entry = prog.block("entry")
        ck = [i for i in entry.instructions if i.is_checkpoint]
        if ck:
            clone = ck[-1].copy()
            pos = entry.instructions.index(ck[-1])
            entry.instructions.insert(pos, clone)
            stats = sink_checkpoints(prog)
            assert stats.deduplicated >= 1


class TestStrengthReduction:
    def _mul_loop(self):
        b = ProgramBuilder("sr")
        b.begin_block("entry")
        i = b.li(0)
        n = b.li(10)
        base = b.li(0x300)
        b.jmp("loop")
        b.begin_block("loop")
        off = b.muli(i, 4)
        addr = b.add(base, off)
        b.store(i, addr)
        b.addi(i, 1, dest=i)
        b.blt(i, n, "loop", "exit")
        b.begin_block("exit")
        b.ret()
        return b.finish()

    def test_multiplication_replaced(self):
        prog = self._mul_loop()
        golden = _run_image(self._mul_loop())
        stats = reduce_strength(prog)
        assert stats.reduced == 1
        loop_ops = [i.op for i in prog.block("loop").instructions]
        assert Opcode.MULI not in loop_ops
        assert Opcode.MOV in loop_ops
        assert _run_image(prog) == golden

    def test_derived_iv_initialised_in_preheader(self):
        prog = self._mul_loop()
        reduce_strength(prog)
        entry_ops = [i.op for i in prog.entry.instructions]
        assert Opcode.LI in entry_ops  # derived IV init folded to constant

    def test_shli_also_reduced(self):
        b = ProgramBuilder("sr2")
        b.begin_block("entry")
        i = b.li(0)
        n = b.li(6)
        base = b.li(0x300)
        b.jmp("loop")
        b.begin_block("loop")
        off = b.shli(i, 2)
        addr = b.add(base, off)
        b.store(i, addr)
        b.addi(i, 1, dest=i)
        b.blt(i, n, "loop", "exit")
        b.begin_block("exit")
        b.ret()
        prog = b.finish()
        golden = _run_image(b.program.copy())
        stats = reduce_strength(prog)
        assert stats.reduced == 1
        assert _run_image(prog) == golden

    def test_no_reduction_without_iv(self, diamond):
        stats = reduce_strength(diamond)
        assert stats.reduced == 0


class TestLivm:
    def _lockstep(self):
        b = ProgramBuilder("livm")
        b.begin_block("entry")
        i = b.li(0)
        p = b.li(0x400)
        n = b.li(8)
        b.jmp("loop")
        b.begin_block("loop")
        b.store(i, p)
        b.addi(i, 1, dest=i)
        b.addi(p, 4, dest=p)
        b.blt(i, n, "loop", "exit")
        b.begin_block("exit")
        b.ret()
        return b.finish(), p

    def test_dependent_iv_removed(self):
        prog, p = self._lockstep()
        golden = _run_image(self._lockstep()[0])
        stats = merge_induction_variables(prog)
        assert stats.merged == 1
        # p's loop update is gone.
        updates = [
            i
            for i in prog.block("loop").instructions
            if i.dest == p and p in i.srcs
        ]
        assert updates == []
        assert _run_image(prog) == golden

    def test_uses_rematerialized(self):
        prog, p = self._lockstep()
        stats = merge_induction_variables(prog)
        assert stats.rematerialized_uses >= 1

    def test_semantics_with_post_loop_use(self):
        b = ProgramBuilder("livm2")
        b.begin_block("entry")
        i = b.li(0)
        p = b.li(0x400)
        n = b.li(5)
        b.jmp("loop")
        b.begin_block("loop")
        b.store(i, p)
        b.addi(i, 1, dest=i)
        b.addi(p, 4, dest=p)
        b.blt(i, n, "loop", "exit")
        b.begin_block("exit")
        b.store(i, p)  # post-loop use of p's final value
        b.ret()
        prog = b.finish()
        golden = _run_image(b.program.copy())
        merge_induction_variables(prog)
        assert _run_image(prog) == golden

    def test_unprofitable_merge_rejected(self):
        """An IV with many uses and a non-trivial scale must not merge."""
        b = ProgramBuilder("livm3")
        b.begin_block("entry")
        i = b.li(0)
        p = b.li(0)
        n = b.li(4)
        base = b.li(0x500)
        b.jmp("loop")
        b.begin_block("loop")
        # Five uses of p -> remat cost 5*(shli) > benefit.
        a1 = b.add(p, base)
        a2 = b.add(p, a1)
        a3 = b.add(p, a2)
        a4 = b.add(p, a3)
        b.store(a4, base)
        u = b.add(p, base)
        b.store(u, base, offset=4)
        b.addi(i, 1, dest=i)
        b.addi(p, 8, dest=p)
        b.blt(i, n, "loop", "exit")
        b.begin_block("exit")
        b.ret()
        prog = b.finish()
        stats = merge_induction_variables(prog)
        assert stats.merged == 0

    def test_use_after_update_blocks_merge(self):
        b = ProgramBuilder("livm4")
        b.begin_block("entry")
        i = b.li(0)
        p = b.li(0x400)
        n = b.li(4)
        b.jmp("loop")
        b.begin_block("loop")
        b.addi(p, 4, dest=p)
        b.store(i, p)  # reads p AFTER its update: lockstep broken
        b.addi(i, 1, dest=i)
        b.blt(i, n, "loop", "exit")
        b.begin_block("exit")
        b.ret()
        prog = b.finish()
        stats = merge_induction_variables(prog)
        assert stats.merged == 0


class TestScheduling:
    def _ckpt_after_load(self):
        b = ProgramBuilder("sched")
        b.begin_block("entry")
        base = b.li(0x100)
        v = b.load(base)
        from repro.isa import instructions as ins

        b.emit(ins.checkpoint(v))
        a = b.li(5)
        c = b.addi(a, 1)
        b.store(c, base, offset=8)
        b.ret()
        return b.finish(), v

    def test_checkpoint_separated_from_def(self):
        prog, v = self._ckpt_after_load()
        schedule_program(prog)
        instrs = prog.entry.instructions
        load_pos = next(
            i for i, x in enumerate(instrs) if x.op is Opcode.LD
        )
        ck_pos = next(i for i, x in enumerate(instrs) if x.is_checkpoint)
        assert ck_pos - load_pos > 1  # independent work hoisted between

    def test_semantics_preserved(self, sum_loop):
        golden = _run_image(sum_loop.copy())
        schedule_program(sum_loop)
        sum_loop.validate()
        assert _run_image(sum_loop) == golden

    def test_terminator_stays_last(self, sum_loop):
        schedule_program(sum_loop)
        for block in sum_loop.blocks:
            assert block.instructions[-1].is_terminator
            for instr in block.instructions[:-1]:
                assert not instr.is_terminator

    def test_memory_order_preserved(self):
        b = ProgramBuilder("mem")
        b.begin_block("entry")
        base = b.li(0x100)
        x = b.li(1)
        b.store(x, base)
        y = b.load(base)  # must still see the store
        b.store(y, base, offset=4)
        b.ret()
        prog = b.finish()
        golden = _run_image(b.program.copy())
        schedule_program(prog)
        assert _run_image(prog) == golden

    def test_boundaries_not_crossed(self):
        from repro.compiler.checkpoints import insert_eager_checkpoints
        from helpers import build_sum_loop

        prog = build_sum_loop(trip=4)
        partition_regions(prog, max_stores=2)
        insert_eager_checkpoints(prog)
        regions_before = [
            (i.uid, i.region_id) for i in prog.instructions() if not i.is_boundary
        ]
        schedule_program(prog)
        regions_after = {
            i.uid: i.region_id for i in prog.instructions() if not i.is_boundary
        }
        for uid, region in regions_before:
            assert regions_after[uid] == region
