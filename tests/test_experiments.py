"""Experiment-driver tests on a small benchmark subset.

These assert the *qualitative shape* of every figure driver — who wins,
directionality, category consistency — quickly; the full-suite numbers
live in benchmarks/ (see EXPERIMENTS.md for paper-vs-measured).
"""

import pytest

from repro.harness.experiments import (
    BREAKDOWN_CATEGORIES,
    breakdown_means,
    fig04_checkpoint_ratio,
    fig14_fig15_clq_designs,
    fig18_sensor_latency,
    fig19_turnpike_wcdl,
    fig20_turnstile_wcdl,
    fig21_ablation,
    fig22_sb_sensitivity,
    fig23_store_breakdown,
    fig24_clq_occupancy,
    fig25_clq_size,
    fig26_region_codesize,
    table1_hw_cost,
)
from repro.harness.runner import RunCache

SUBSET = ["CPU2006.gcc", "CPU2017.exchange2", "SPLASH3.radix", "CPU2006.mcf"]


@pytest.fixture(scope="module")
def cache():
    return RunCache()


class TestFig04:
    def test_small_sb_more_checkpoints(self, cache):
        result = fig04_checkpoint_ratio(SUBSET, cache=cache)
        assert result[4].mean > result[40].mean

    def test_ratios_are_fractions(self, cache):
        result = fig04_checkpoint_ratio(SUBSET, cache=cache)
        for series in result.values():
            for value in series.per_benchmark.values():
                assert 0.0 <= value <= 1.0


class TestFig14Fig15:
    def test_ideal_at_least_as_fast(self, cache):
        result = fig14_fig15_clq_designs(SUBSET, cache=cache)
        ideal = result["overhead"]["ideal"]
        compact = result["overhead"]["compact"]
        assert ideal.geomean <= compact.geomean + 0.02

    def test_ideal_detects_more_warfree(self, cache):
        result = fig14_fig15_clq_designs(SUBSET, cache=cache)
        ideal = result["warfree_ratio"]["ideal"]
        compact = result["warfree_ratio"]["compact"]
        for uid in SUBSET:
            assert (
                ideal.per_benchmark[uid] >= compact.per_benchmark[uid] - 1e-9
            )


class TestFig18:
    def test_series_shape(self):
        series = fig18_sensor_latency()
        for clock, points in series.items():
            latencies = [lat for _, lat in points]
            assert all(a > b for a, b in zip(latencies, latencies[1:]))

    def test_higher_clock_higher_latency(self):
        series = fig18_sensor_latency()
        for (n20, l20), (n30, l30) in zip(series[2.0], series[3.0]):
            assert n20 == n30 and l30 > l20


class TestFig19Fig20:
    def test_turnpike_beats_turnstile_everywhere(self, cache):
        tp = fig19_turnpike_wcdl(SUBSET, wcdls=(10, 50), cache=cache)
        ts = fig20_turnstile_wcdl(SUBSET, wcdls=(10, 50), cache=cache)
        for wcdl in (10, 50):
            for uid in SUBSET:
                assert (
                    tp[wcdl].per_benchmark[uid]
                    <= ts[wcdl].per_benchmark[uid] + 1e-6
                )

    def test_turnstile_monotone_in_wcdl(self, cache):
        ts = fig20_turnstile_wcdl(SUBSET, wcdls=(10, 30, 50), cache=cache)
        assert ts[10].geomean <= ts[30].geomean <= ts[50].geomean

    def test_turnpike_low_overhead(self, cache):
        tp = fig19_turnpike_wcdl(SUBSET, wcdls=(10,), cache=cache)
        assert tp[10].geomean < 1.15


class TestFig21:
    def test_eight_series_in_order(self, cache):
        series = fig21_ablation(SUBSET, cache=cache)
        assert len(series) == 8
        assert series[0].name == "Turnstile"
        assert series[-1].name == "Turnpike"

    def test_turnstile_worst_turnpike_best(self, cache):
        series = fig21_ablation(SUBSET, cache=cache)
        geos = [s.geomean for s in series]
        assert geos[0] == max(geos)
        assert geos[-1] <= min(geos) + 0.03

    def test_fast_release_improves_on_turnstile(self, cache):
        series = fig21_ablation(SUBSET, cache=cache)
        by_name = {s.name: s.geomean for s in series}
        assert by_name["Fast Release"] < by_name["Turnstile"]


class TestFig22:
    def test_turnstile_improves_with_sb(self, cache):
        result = fig22_sb_sensitivity(
            SUBSET,
            turnstile_sizes=(4, 10, 40),
            turnpike_sizes=(4,),
            cache=cache,
        )
        ts = result["turnstile"]
        assert ts[4].geomean >= ts[10].geomean >= ts[40].geomean

    def test_turnpike_sb4_beats_turnstile_sb40(self, cache):
        """The paper's headline: Turnpike with 4 entries outperforms
        Turnstile with a 10x larger buffer."""
        result = fig22_sb_sensitivity(
            SUBSET,
            turnstile_sizes=(40,),
            turnpike_sizes=(4,),
            cache=cache,
        )
        assert (
            result["turnpike"][4].geomean
            <= result["turnstile"][40].geomean + 0.02
        )


class TestFig23:
    def test_categories_partition_stores(self, cache):
        breakdown = fig23_store_breakdown(SUBSET, cache=cache)
        for uid, cats in breakdown.items():
            assert set(cats) == set(BREAKDOWN_CATEGORIES)
            assert sum(cats.values()) <= 1.3  # near 1 (measured fractions)
            for value in cats.values():
                assert value >= 0

    def test_means(self, cache):
        breakdown = fig23_store_breakdown(SUBSET, cache=cache)
        means = breakdown_means(breakdown)
        assert means["pruned"] > 0
        released = means["colored"] + means["warfree"]
        assert released > 0.1


class TestFig24Fig25:
    def test_occupancy_bounds(self, cache):
        occ = fig24_clq_occupancy(SUBSET, cache=cache)
        for uid, (avg, peak) in occ.items():
            assert 0 <= avg <= peak
            assert peak <= 8  # in-flight regions are few

    def test_clq2_close_to_clq4(self, cache):
        result = fig25_clq_size(SUBSET, cache=cache)
        assert abs(result[2].geomean - result[4].geomean) < 0.05


class TestFig26:
    def test_region_size_reasonable(self, cache):
        data = fig26_region_codesize(SUBSET, cache=cache)
        for uid, (size, growth) in data.items():
            assert 2.0 < size < 80.0
            assert 0.0 <= growth < 1.2


class TestTable1:
    def test_driver_returns_table(self):
        table = table1_hw_cost()
        area_ratio, energy_ratio = table.turnpike_vs_sb4
        assert 0.05 < area_ratio < 0.15
        assert 0.05 < energy_ratio < 0.15
