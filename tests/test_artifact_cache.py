"""The persistent artifact cache, RunCache layering, and sharding.

Covers the tentpole's storage/concurrency contract:

* ArtifactCache round-trips traces and stats, tolerates corrupt files,
  and honours the ``REPRO_CACHE_DIR`` disable switch;
* a warm persistent cache serves RunCache without recompiling or
  re-simulating anything (monkeypatched builders raise if touched);
* ``prepared()`` under thread contention with interleaved ``clear()``
  never corrupts state, and ``clear()`` leaves the disk layer intact;
* ``simulate_many`` returns identical stats sharded or sequential;
* shard-merge arithmetic (``SimStats.merge`` / ``merge_stats`` /
  ``CLQStats.merge``) is exact.
"""

from __future__ import annotations

import json
import multiprocessing
import threading

import pytest

from repro.arch.clq import CLQStats
from repro.arch.config import CoreConfig, ResilienceHardwareConfig
from repro.arch.stats import SimStats, merge_stats
from repro.harness import artifacts
from repro.harness.artifacts import ArtifactCache
from repro.harness.runner import (
    RunCache,
    _baseline_config,
    resolve_workers,
    simulate_many,
    turnpike_scheme,
    warm_suite,
)

UID = "CPU2006.mcf"


@pytest.fixture
def disk_cache(tmp_path):
    return ArtifactCache(tmp_path / "artifacts")


class TestArtifactCache:
    def test_trace_roundtrip(self, disk_cache):
        trace = [(0, 1, 2, 3, -1, -1, 0), (4, -1, 5, -1, 4096, 2, 1)]
        key = disk_cache.trace_key(UID, _baseline_config())
        assert disk_cache.load_trace(key) is None
        disk_cache.store_trace(key, trace)
        assert disk_cache.load_trace(key) == trace

    def test_stats_roundtrip(self, disk_cache):
        stats = SimStats(
            cycles=123.0, instructions=45, cache={"hits": 7, "misses": 2}
        )
        key = disk_cache.stats_key(
            UID, _baseline_config(), ResilienceHardwareConfig.baseline(),
            CoreConfig(),
        )
        assert disk_cache.load_stats(key) is None
        disk_cache.store_stats(key, stats)
        assert disk_cache.load_stats(key) == stats

    def test_corrupt_artifact_is_a_miss(self, disk_cache):
        trace_key = disk_cache.trace_key(UID, _baseline_config())
        stats_key = disk_cache.stats_key(
            UID, _baseline_config(), ResilienceHardwareConfig.baseline(),
            CoreConfig(),
        )
        (disk_cache.root / f"trace-{trace_key}.pkl").write_bytes(b"garbage")
        (disk_cache.root / f"stats-{stats_key}.json").write_text("{nope")
        assert disk_cache.load_trace(trace_key) is None
        assert disk_cache.load_stats(stats_key) is None

    def test_keys_depend_on_configs(self):
        base = _baseline_config()
        tp_c, tp_h = turnpike_scheme()
        assert ArtifactCache.trace_key(UID, base) != ArtifactCache.trace_key(
            UID, tp_c
        )
        assert ArtifactCache.stats_key(
            UID, tp_c, tp_h, CoreConfig()
        ) != ArtifactCache.stats_key(
            UID, tp_c, ResilienceHardwareConfig.baseline(), CoreConfig()
        )

    def test_clear_and_info(self, disk_cache):
        disk_cache.store_trace("abc", [(0, -1, -1, -1, -1, -1, 0)])
        info = disk_cache.info()
        assert info["artifacts"] == 1 and info["traces"] == 1
        assert disk_cache.clear() == 1
        assert disk_cache.artifact_paths() == []

    def test_default_disabled_by_env(self, monkeypatch):
        for value in ("0", "off", "none", ""):
            monkeypatch.setenv("REPRO_CACHE_DIR", value)
            assert ArtifactCache.default() is None

    def test_default_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c"))
        cache = ArtifactCache.default()
        assert cache is not None
        assert cache.root == tmp_path / "c"

    def test_code_digest_stable(self):
        assert artifacts.code_digest() == artifacts.code_digest()
        assert len(artifacts.code_digest()) == 64


def _hammer_stats(root: str, key: str, rounds: int) -> None:
    """Child-process body: repeatedly rewrite one stats key."""
    cache = ArtifactCache(root)
    for i in range(rounds):
        cache.store_stats(
            key, SimStats(cycles=float(i + 1), instructions=i, cache={})
        )


def _hammer_trace(root: str, key: str, rounds: int) -> None:
    """Child-process body: repeatedly rewrite one trace key."""
    cache = ArtifactCache(root)
    trace = [(i, -1, -1, -1, -1, -1, 0) for i in range(64)]
    for _ in range(rounds):
        cache.store_trace(key, trace)


class TestConcurrentAccess:
    """Multiple *processes* writing the same key must never corrupt it:
    every concurrent load observes either a miss or one writer's
    complete artifact, never interleaved bytes. This is the contract
    the service's shared worker pool (and ``repro serve`` generally)
    leans on."""

    def _spawn(self, target, root, key, procs=3, rounds=40):
        ctx = multiprocessing.get_context()
        children = [
            ctx.Process(target=target, args=(str(root), key, rounds))
            for _ in range(procs)
        ]
        for child in children:
            child.start()
        return children

    def test_same_key_stats_writers_never_corrupt(self, disk_cache):
        key = "f" * 40
        children = self._spawn(_hammer_stats, disk_cache.root, key)
        try:
            # hammer loads while the writers race each other
            for _ in range(300):
                stats = disk_cache.load_stats(key)
                if stats is not None:
                    assert stats.cycles == float(stats.instructions + 1)
                if not any(c.is_alive() for c in children):
                    break
        finally:
            for child in children:
                child.join(timeout=60)
        assert all(c.exitcode == 0 for c in children)
        final = disk_cache.load_stats(key)
        assert final is not None and final.cycles == 40.0
        # no temp-file litter left behind by the atomic-write protocol
        assert not list(disk_cache.root.glob(".tmp-*"))

    def test_same_key_trace_writers_never_corrupt(self, disk_cache):
        key = "e" * 40
        children = self._spawn(_hammer_trace, disk_cache.root, key, rounds=20)
        try:
            for _ in range(300):
                trace = disk_cache.load_trace(key)
                if trace is not None:
                    assert len(trace) == 64
                    assert trace[63][0] == 63
                if not any(c.is_alive() for c in children):
                    break
        finally:
            for child in children:
                child.join(timeout=60)
        assert all(c.exitcode == 0 for c in children)
        assert len(disk_cache.load_trace(key)) == 64


class TestEntriesAndInfoDeterminism:
    def test_entries_sorted_and_complete(self, disk_cache):
        # insertion order deliberately scrambled vs (kind, key) order
        disk_cache.store_trace("b" * 40, [(0, -1, -1, -1, -1, -1, 0)])
        disk_cache.store_stats("z" * 40, SimStats(cycles=1.0))
        disk_cache.store_stats("a" * 40, SimStats(cycles=2.0))
        entries = disk_cache.entries()
        assert [(k, key) for k, key, _ in entries] == [
            ("stats", "a" * 40),
            ("stats", "z" * 40),
            ("trace", "b" * 40),
        ]
        assert all(size > 0 for _, _, size in entries)
        assert entries == disk_cache.entries()  # stable across calls

    def test_cache_info_cli_is_diffable(self, monkeypatch, capsys, tmp_path):
        """`repro cache info --list --json` must emit byte-identical
        output across invocations so CI can diff it."""
        from repro.__main__ import main as cli_main

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cli-cache"))
        cache = ArtifactCache.default()
        cache.store_stats("c" * 40, SimStats(cycles=3.0))
        cache.store_trace("d" * 40, [(1, -1, -1, -1, -1, -1, 0)])

        outputs = []
        for _ in range(2):
            assert cli_main(["cache", "info", "--list", "--json"]) == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]
        payload = json.loads(outputs[0])
        assert [e["key"] for e in payload["entries"]] == ["c" * 40, "d" * 40]
        assert payload["artifacts"] == 2
        # and the plain-text listing is sorted the same way
        assert cli_main(["cache", "info", "--list"]) == 0
        text = capsys.readouterr().out
        assert text.index("c" * 40) < text.index("d" * 40)


class TestRunCachePersistence:
    def test_warm_disk_cache_skips_recompute(self, disk_cache, monkeypatch):
        config = _baseline_config()
        hardware = ResilienceHardwareConfig.baseline()
        cold = RunCache(persistent=disk_cache)
        want = cold.stats(UID, config, hardware)

        # A fresh in-process cache over the same disk layer must serve
        # both the stats and the prepared trace without ever building a
        # workload, compiling, or running the timing core again.
        import repro.harness.runner as runner_mod

        def boom(*args, **kwargs):
            raise AssertionError("recompute attempted on a warm cache")

        monkeypatch.setattr(runner_mod, "build_workload", boom)
        monkeypatch.setattr(runner_mod, "compile_baseline", boom)
        monkeypatch.setattr(runner_mod, "compile_program", boom)
        monkeypatch.setattr(runner_mod.InOrderCore, "run", boom)
        warm = RunCache(persistent=disk_cache)
        assert warm.stats(UID, config, hardware) == want
        run = warm.prepared(UID, config)
        assert run.trace  # served from disk
        assert run.summary.total == len(run.trace)

    def test_clear_keeps_disk_layer(self, disk_cache):
        config = _baseline_config()
        cache = RunCache(persistent=disk_cache)
        cache.prepared(UID, config)
        n_artifacts = len(disk_cache.artifact_paths())
        assert n_artifacts > 0
        cache.clear()
        assert not cache._workloads
        assert not cache._prepared
        assert not cache._stats
        assert len(disk_cache.artifact_paths()) == n_artifacts

    def test_stats_returns_defensive_copies(self):
        cache = RunCache(persistent=None)
        config = _baseline_config()
        hardware = ResilienceHardwareConfig.baseline()
        first = cache.stats(UID, config, hardware)
        first.cycles = -1.0
        first.cache["poison"] = 1
        second = cache.stats(UID, config, hardware)
        assert second.cycles > 0
        assert "poison" not in second.cache

    def test_concurrent_prepared_and_clear(self, disk_cache):
        """Thread-hammer: concurrent prepared()/stats()/clear() must not
        corrupt the cache or produce divergent results."""
        cache = RunCache(persistent=disk_cache)
        config = _baseline_config()
        hardware = ResilienceHardwareConfig.baseline()
        want = cache.stats(UID, config, hardware)
        errors: list[BaseException] = []
        barrier = threading.Barrier(6)

        def worker():
            try:
                barrier.wait()
                for _ in range(5):
                    run = cache.prepared(UID, config)
                    assert run.uid == UID and run.trace
                    assert cache.stats(UID, config, hardware) == want
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        def clearer():
            try:
                barrier.wait()
                for _ in range(10):
                    cache.clear()
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(5)]
        threads.append(threading.Thread(target=clearer))
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors

    def test_prepared_identity_memoised(self):
        cache = RunCache(persistent=None)
        config = _baseline_config()
        assert cache.prepared(UID, config) is cache.prepared(UID, config)


class TestSharding:
    def test_resolve_workers(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(None) == 1
        assert resolve_workers(3) == 3
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert resolve_workers(None) == 5
        assert resolve_workers(2) == 2
        monkeypatch.setenv("REPRO_WORKERS", "junk")
        assert resolve_workers(None) == 1
        assert resolve_workers(0) >= 1  # one per CPU

    def test_simulate_many_parallel_matches_sequential(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "shard-cache"))
        tp_c, tp_h = turnpike_scheme()
        base_c = _baseline_config()
        base_h = ResilienceHardwareConfig.baseline()
        jobs = [
            (UID, tp_c, tp_h),
            ("SPLASH3.radix", tp_c, tp_h),
            (UID, base_c, base_h),
            ("SPLASH3.radix", base_c, base_h),
        ]
        sequential = simulate_many(
            jobs, workers=1, cache=RunCache(persistent=None)
        )
        sharded = simulate_many(jobs, workers=2)
        assert sharded == sequential

    def test_warm_suite_quick(self, monkeypatch, tmp_path):
        # GLOBAL_CACHE binds its persistent layer at import time, so the
        # sequential path needs the instance swapped, not just the env.
        import repro.harness.runner as runner_mod

        disk = ArtifactCache(tmp_path / "warm-cache")
        monkeypatch.setattr(
            runner_mod, "GLOBAL_CACHE", RunCache(persistent=disk)
        )
        results = warm_suite([UID], workers=1)
        assert set(results) == {
            (UID, "baseline"), (UID, "turnstile"), (UID, "turnpike")
        }
        assert all(s.cycles > 0 for s in results.values())
        # the persistent layer now holds every artefact
        info = disk.info()
        assert info["traces"] == 3 and info["stats"] == 3


class TestShardMerge:
    def test_simstats_merge_sums_and_weights(self):
        a = SimStats(
            cycles=100.0, instructions=50, sb_stall_cycles=4.0,
            stores_total=5, regions=10, clq_occupancy_avg=2.0,
            clq_occupancy_max=4, branch_mispredictions=3,
            cache={"hits": 10},
        )
        b = SimStats(
            cycles=50.0, instructions=25, sb_stall_cycles=1.0,
            stores_total=2, regions=30, clq_occupancy_avg=4.0,
            clq_occupancy_max=3, branch_mispredictions=1,
            cache={"hits": 5, "misses": 2},
        )
        merged = merge_stats([a, b])
        assert merged.cycles == 150.0
        assert merged.instructions == 75
        assert merged.sb_stall_cycles == 5.0
        assert merged.stores_total == 7
        assert merged.regions == 40
        # region-weighted: (2*10 + 4*30) / 40
        assert merged.clq_occupancy_avg == pytest.approx(3.5)
        assert merged.clq_occupancy_max == 4
        assert merged.branch_mispredictions == 4
        assert merged.cache == {"hits": 15, "misses": 2}
        # merge_stats builds a fresh object; inputs are untouched
        assert a.cycles == 100.0 and b.cycles == 50.0

    def test_merge_stats_empty_raises(self):
        with pytest.raises(ValueError):
            merge_stats([])

    def test_merge_in_place_returns_self(self):
        a, b = SimStats(cycles=1.0), SimStats(cycles=2.0)
        assert a.merge(b) is a
        assert a.cycles == 3.0

    def test_clq_stats_merge(self):
        a = CLQStats(
            loads_inserted=5, war_checks=3, war_conflicts=1,
            occupancy_samples=2, occupancy_sum=6, occupancy_max=4,
        )
        b = CLQStats(
            loads_inserted=1, war_checks=2, war_conflicts=2, overflows=1,
            occupancy_samples=3, occupancy_sum=3, occupancy_max=2,
        )
        merged = a.merge(b)
        assert merged is a
        assert merged.loads_inserted == 6
        assert merged.war_checks == 5
        assert merged.war_conflicts == 3
        assert merged.overflows == 1
        assert merged.occupancy_max == 4
        assert merged.occupancy_avg == pytest.approx(9 / 5)
