"""Timing-core tests: hazards, stalls, and the resilience mechanisms'
first-order performance behaviour."""

import pytest

from repro.arch.config import CoreConfig, ResilienceHardwareConfig
from repro.arch.core import InOrderCore, simulate_trace
from repro.runtime import trace as tr


def _alu(dest, src1=-1, src2=-1):
    return (tr.K_ALU, dest, src1, src2, -1, -1, 0)


def _ld(dest, base, addr):
    return (tr.K_LD, dest, base, -1, addr, -1, 0)


def _st(value, base, addr, region=-1, kind=0):
    return (tr.K_ST, -1, value, base, addr, region, kind)


def _ckpt(reg, region=-1):
    return (tr.K_CKPT, -1, reg, -1, -1, region, 0)


def _boundary(region):
    return (tr.K_BOUNDARY, -1, -1, -1, -1, region, 0)


def _ret():
    return (tr.K_RET, -1, -1, -1, -1, -1, 0)


def _baseline():
    return ResilienceHardwareConfig.baseline()


class TestBasicPipeline:
    def test_dual_issue_two_independent_per_cycle(self):
        trace = [_alu(1), _alu(2), _alu(3), _alu(4), _ret()]
        stats = simulate_trace(trace, resilience=_baseline())
        # 5 instructions over 2-wide: ~3 cycles (+1 completion).
        assert stats.cycles <= 4

    def test_dependent_chain_serialises(self):
        chain = [_alu(1)] + [_alu(1, 1) for _ in range(9)] + [_ret()]
        stats = simulate_trace(chain, resilience=_baseline())
        assert stats.cycles >= 10  # one per dependence level

    def test_data_stall_attributed(self):
        trace = [_ld(1, -1, 0x100), _alu(2, 1), _ret()]
        stats = simulate_trace(trace, resilience=_baseline())
        assert stats.data_stall_cycles > 0

    def test_load_use_latency_visible(self):
        independent = [_ld(1, -1, 0x100), _alu(2), _alu(3), _ret()]
        dependent = [_ld(1, -1, 0x100), _alu(2, 1), _alu(3), _ret()]
        fast = simulate_trace(independent, resilience=_baseline())
        slow = simulate_trace(dependent, resilience=_baseline())
        assert slow.cycles > fast.cycles

    def test_memory_port_serialises_loads(self):
        # Same line: all hits, but one D-port access per cycle.
        loads = [_ld(k + 1, -1, 0x100) for k in range(8)] + [_ret()]
        stats = simulate_trace(loads, resilience=_baseline())
        assert stats.cycles >= 8

    def test_instruction_count_excludes_boundaries(self):
        trace = [_boundary(0), _alu(1), _boundary(1), _alu(2), _ret()]
        stats = simulate_trace(
            trace, resilience=ResilienceHardwareConfig.turnstile(10)
        )
        assert stats.instructions == 3

    def test_cache_misses_slow_execution(self):
        near = [_ld(1, -1, 0x100), _ret()]
        # Touch many distinct lines to go past L1/L2.
        far = [_ld(1, -1, 0x100 + 0x40 * k) for k in range(4)] + [_ret()]
        a = simulate_trace(near, resilience=_baseline())
        b = simulate_trace(far, resilience=_baseline())
        assert b.cycles > a.cycles


class TestTurnstileTiming:
    def _region_trace(self, regions=40, stores_per_region=3, fillers=2):
        trace = []
        addr = 0
        for r in range(regions):
            trace.append(_boundary(r))
            for s in range(stores_per_region):
                trace.append(_st(1, 2, 0x1000 + addr))
                addr += 4
            for _ in range(fillers):
                trace.append(_alu(3))
        trace.append(_ret())
        return trace

    def test_quarantine_counts(self):
        trace = self._region_trace()
        stats = simulate_trace(
            trace, resilience=ResilienceHardwareConfig.turnstile(10)
        )
        assert stats.quarantined == stats.stores_total
        assert stats.warfree_released == 0

    def test_overhead_grows_with_wcdl(self):
        trace = self._region_trace()
        cycles = [
            simulate_trace(
                trace, resilience=ResilienceHardwareConfig.turnstile(w)
            ).cycles
            for w in (10, 30, 50)
        ]
        assert cycles[0] < cycles[1] < cycles[2]

    def test_bigger_sb_reduces_stalls(self):
        trace = self._region_trace()
        small = simulate_trace(
            trace, resilience=ResilienceHardwareConfig.turnstile(30, sb_size=4)
        )
        large = simulate_trace(
            trace, resilience=ResilienceHardwareConfig.turnstile(30, sb_size=40)
        )
        assert large.sb_stall_cycles < small.sb_stall_cycles
        assert large.cycles < small.cycles

    def test_store_cap_overflow_safety_valve(self):
        # A single region with more stores than the SB: the valve must
        # fire instead of deadlocking.
        trace = [_boundary(0)] + [
            _st(1, 2, 0x1000 + 4 * k) for k in range(8)
        ] + [_ret()]
        stats = simulate_trace(
            trace, resilience=ResilienceHardwareConfig.turnstile(10, sb_size=4)
        )
        assert stats.forced_region_closures > 0
        assert stats.cycles < 10_000  # terminated promptly


class TestTurnpikeTiming:
    def _warfree_trace(self, regions=30):
        trace = []
        for r in range(regions):
            trace.append(_boundary(r))
            trace.append(_ld(1, -1, 0x100 + 4 * r))
            trace.append(_st(1, 2, 0x4000 + 4 * r))  # never-loaded address
            trace.append(_alu(3))
        trace.append(_ret())
        return trace

    def test_warfree_stores_released(self):
        stats = simulate_trace(
            self._warfree_trace(), resilience=ResilienceHardwareConfig.turnpike(10)
        )
        assert stats.warfree_released > 0
        assert stats.warfree_released + stats.quarantined == stats.stores_total

    def test_war_conflict_quarantines(self):
        trace = [
            _boundary(0),
            _ld(1, -1, 0x100),
            _st(1, 2, 0x100),  # same address: WAR
            _ret(),
        ]
        stats = simulate_trace(
            trace, resilience=ResilienceHardwareConfig.turnpike(10)
        )
        assert stats.quarantined == 1
        assert stats.warfree_released == 0

    def test_checkpoints_colored(self):
        trace = []
        for r in range(10):
            trace.append(_boundary(r))
            trace.append(_alu(5))
            trace.append(_ckpt(5, r))
        trace.append(_ret())
        stats = simulate_trace(
            trace, resilience=ResilienceHardwareConfig.turnpike(10)
        )
        assert stats.colored_released > 0

    def test_color_exhaustion_quarantines(self):
        # Huge WCDL keeps many regions unverified: the 4-color pool for
        # one register runs out and checkpoints fall back to the SB.
        trace = []
        for r in range(12):
            trace.append(_boundary(r))
            trace.append(_alu(5))
            trace.append(_ckpt(5, r))
        trace.append(_ret())
        stats = simulate_trace(
            trace,
            resilience=ResilienceHardwareConfig.turnpike(2000),
        )
        assert stats.quarantined > 0

    def test_turnpike_beats_turnstile(self):
        trace = self._warfree_trace(60)
        ts = simulate_trace(
            trace, resilience=ResilienceHardwareConfig.turnstile(50)
        )
        tp = simulate_trace(
            trace, resilience=ResilienceHardwareConfig.turnpike(50)
        )
        assert tp.cycles < ts.cycles

    def test_pending_same_address_blocks_fast_release(self):
        trace = [
            _boundary(0),
            _ld(1, -1, 0x200),
            _st(1, 2, 0x200),  # WAR -> quarantined
            _boundary(1),
            _st(1, 2, 0x200),  # older pending store to same address
            _ret(),
        ]
        stats = simulate_trace(
            trace, resilience=ResilienceHardwareConfig.turnpike(100)
        )
        assert stats.quarantined == 2
        assert stats.warfree_released == 0


class TestBranches:
    def test_predictable_loop_cheap(self):
        trace = []
        for k in range(100):
            trace.append(_alu(1))
            taken = 1 if k < 99 else 0
            trace.append((tr.K_BR, -1, 1, -1, 77, -1, taken | 2))
        trace.append(_ret())
        stats = simulate_trace(trace, resilience=_baseline())
        assert stats.branch_mispredictions <= 4

    def test_random_branches_mispredict(self):
        import random

        rng = random.Random(1)
        trace = []
        for _ in range(200):
            trace.append(_alu(1))
            trace.append((tr.K_BR, -1, 1, -1, 78, -1, rng.randrange(2)))
        trace.append(_ret())
        stats = simulate_trace(trace, resilience=_baseline())
        assert stats.branch_mispredictions > 40
        assert stats.branch_stall_cycles > 0

    def test_unconditional_jumps_free(self):
        trace = []
        for _ in range(50):
            trace.append(_alu(1))
            trace.append((tr.K_BR, -1, -1, -1, 79, -1, 1 | 4))
        trace.append(_ret())
        stats = simulate_trace(trace, resilience=_baseline())
        assert stats.branch_mispredictions == 0


class TestEndToEndMonotonicity:
    """Qualitative properties on a real workload (cheap subset)."""

    @pytest.fixture(scope="class")
    def traces(self, gcc_workload, gcc_baseline, gcc_turnstile, gcc_turnpike):
        from repro.runtime.interpreter import execute

        out = {}
        for name, compiled in (
            ("base", gcc_baseline),
            ("ts", gcc_turnstile),
            ("tp", gcc_turnpike),
        ):
            result = execute(
                compiled.program, gcc_workload.fresh_memory(), collect_trace=True
            )
            out[name] = result.trace
        return out

    def test_resilience_costs_cycles(self, traces):
        base = simulate_trace(traces["base"], resilience=_baseline())
        ts = simulate_trace(
            traces["ts"], resilience=ResilienceHardwareConfig.turnstile(10)
        )
        assert ts.cycles > base.cycles

    def test_turnpike_cheaper_than_turnstile(self, traces):
        ts = simulate_trace(
            traces["ts"], resilience=ResilienceHardwareConfig.turnstile(10)
        )
        tp = simulate_trace(
            traces["tp"], resilience=ResilienceHardwareConfig.turnpike(10)
        )
        assert tp.cycles < ts.cycles

    def test_turnstile_wcdl_monotone(self, traces):
        cycles = [
            simulate_trace(
                traces["ts"], resilience=ResilienceHardwareConfig.turnstile(w)
            ).cycles
            for w in (10, 20, 30, 40, 50)
        ]
        assert all(a <= b for a, b in zip(cycles, cycles[1:]))

    def test_fresh_core_deterministic(self, traces):
        hw = ResilienceHardwareConfig.turnpike(10)
        a = InOrderCore(CoreConfig(), hw).run(traces["tp"])
        b = InOrderCore(CoreConfig(), hw).run(traces["tp"])
        assert a.cycles == b.cycles
