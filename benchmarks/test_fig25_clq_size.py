"""Figure 25: 2-entry vs 4-entry compact CLQ at 10-cycle WCDL.

Paper: performance is almost identical — the compact 2-entry design is
both low-cost and sufficient.
"""

from repro.harness.experiments import fig25_clq_size
from repro.harness.reporting import format_series_table

from conftest import emit


def test_fig25_clq_size(benchmark, bench_cache, bench_set):
    result = benchmark.pedantic(
        fig25_clq_size,
        args=(bench_set,),
        kwargs={"cache": bench_cache},
        rounds=1,
        iterations=1,
    )
    emit(
        "Figure 25 — CLQ-2 vs CLQ-4 (paper: nearly identical)",
        format_series_table([result[2], result[4]], value_format="{:.3f}"),
    )
    assert abs(result[2].geomean - result[4].geomean) < 0.03
    for uid in result[2].per_benchmark:
        assert (
            abs(result[2].per_benchmark[uid] - result[4].per_benchmark[uid])
            < 0.10
        )
