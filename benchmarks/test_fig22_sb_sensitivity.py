"""Figure 22: store-buffer size sensitivity at 10-cycle WCDL.

Paper: Turnstile improves from 20% (SB-8) to 9% (SB-40) overhead, but
even a 10x larger buffer cannot catch Turnpike's 0% at SB-4. Turnpike
stays flat across SB sizes.
"""

from repro.harness.experiments import fig22_sb_sensitivity
from repro.harness.reporting import format_series_table

from conftest import emit


def test_fig22_sb_sensitivity(benchmark, bench_cache, bench_set):
    result = benchmark.pedantic(
        fig22_sb_sensitivity,
        args=(bench_set,),
        kwargs={"cache": bench_cache},
        rounds=1,
        iterations=1,
    )
    ts = result["turnstile"]
    tp = result["turnpike"]
    emit(
        "Figure 22 — SB size sensitivity @ WCDL 10 "
        "(paper: Turnstile 20/18/13/11/9% @ SB 8-40; Turnpike flat 0%)",
        format_series_table(
            [ts[s] for s in sorted(ts)] + [tp[s] for s in sorted(tp)]
        ),
    )
    # Turnstile improves monotonically with SB size.
    geos = [ts[s].geomean for s in sorted(ts)]
    assert all(a >= b - 0.01 for a, b in zip(geos, geos[1:]))
    # Headline: Turnpike at SB-4 beats Turnstile at SB-40.
    assert tp[4].geomean <= ts[40].geomean + 0.02
    # Turnpike is flat in SB size.
    tp_geos = [tp[s].geomean for s in sorted(tp)]
    assert max(tp_geos) - min(tp_geos) < 0.05
