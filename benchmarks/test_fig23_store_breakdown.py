"""Figure 23: breakdown of all stores by disposition under full Turnpike.

Paper averages: pruned 21%, LICM-eliminated 1.4%, RA-eliminated 1.7%,
IndVarMerging-eliminated 5%, and ~39% of stores released to cache
without SB quarantine (colored + WAR-free).
"""

from repro.harness.experiments import breakdown_means, fig23_store_breakdown
from repro.harness.reporting import format_breakdown_table

from conftest import emit


def test_fig23_store_breakdown(benchmark, bench_cache, bench_set):
    breakdown = benchmark.pedantic(
        fig23_store_breakdown,
        args=(bench_set,),
        kwargs={"cache": bench_cache},
        rounds=1,
        iterations=1,
    )
    means = breakdown_means(breakdown)
    emit(
        "Figure 23 — store breakdown "
        "(paper means: pruned 21%, LICM 1.4%, RA 1.7%, LIVM 5%, "
        "released ~39%)",
        format_breakdown_table(breakdown)
        + "\nmeans: "
        + "  ".join(f"{k}={100 * v:.1f}%" for k, v in means.items()),
    )
    # Pruning removes a substantial share of checkpoints.
    assert means["pruned"] > 0.05
    # Fast release (colored + WAR-free) covers a large fraction.
    assert means["colored"] + means["warfree"] > 0.20
    # Every category is a valid fraction.
    for cat, value in means.items():
        assert 0.0 <= value <= 1.0, cat
