"""Figure 19: Turnpike's normalized execution time for WCDL 10-50.

Paper: 0-14% average overhead across the sweep; ~0% at the default
10-cycle WCDL.
"""

from repro.harness.experiments import fig19_turnpike_wcdl
from repro.harness.reporting import format_series_table

from conftest import emit


def test_fig19_turnpike_wcdl(benchmark, bench_cache, bench_set):
    result = benchmark.pedantic(
        fig19_turnpike_wcdl,
        args=(bench_set,),
        kwargs={"cache": bench_cache},
        rounds=1,
        iterations=1,
    )
    emit(
        "Figure 19 — Turnpike normalized exec time, WCDL 10..50 "
        "(paper: geomean 1.00 @ DL10 .. 1.14 @ DL50)",
        format_series_table([result[w] for w in sorted(result)]),
    )
    geos = [result[w].geomean for w in sorted(result)]
    # Band: low overhead throughout.
    assert geos[0] < 1.10
    assert geos[-1] < 1.25
    # Overhead grows (weakly) with WCDL.
    assert geos[-1] >= geos[0] - 1e-6
