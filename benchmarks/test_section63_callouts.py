"""Section 6.3's per-benchmark callouts, verified.

The paper attributes each optimization's biggest wins to specific
benchmarks:

* store-aware register allocation -> gemsfdtd, lbm ("significant
  overhead reduction ... the register allocation trick eliminates the
  stores of the 2 benchmarks by 19% and 17%");
* loop induction variable merging -> exchange2, leela, lu-contiguous,
  radix;
* LICM checkpoint sinking -> deepsjeng, fotonik3d, nab, x264 ("reducing
  their overhead by >5%" plus big checkpoint removal for cactubssn, lbm,
  cholesky, radix in Fig 23).

This bench computes each optimization's per-benchmark improvement in
isolation and checks the paper's named benchmarks are among the top
beneficiaries.
"""

from dataclasses import replace

from repro.arch.config import ResilienceHardwareConfig
from repro.compiler.config import turnpike_config
from repro.harness.runner import normalized_time

import pytest

from conftest import emit


def _improvement_when_adding(flag: str, benchmarks, cache) -> dict[str, float]:
    """Normalized-time improvement from enabling one pass on top of the
    otherwise-full Turnpike compiler (leave-one-out, inverted)."""
    full = turnpike_config()
    without = replace(full, **{flag: False}, name=f"tp-no-{flag}")
    hw = ResilienceHardwareConfig.turnpike(wcdl=10)
    out = {}
    for uid in benchmarks:
        with_pass = normalized_time(uid, full, hw, cache=cache)
        without_pass = normalized_time(uid, without, hw, cache=cache)
        out[uid] = without_pass - with_pass
    return out


def _report(title: str, gains: dict[str, float], expected: list[str]) -> None:
    ranked = sorted(gains.items(), key=lambda kv: -kv[1])
    lines = [f"{uid:24s} {gain:+.4f}" for uid, gain in ranked[:8]]
    emit(title + f"  (paper callouts: {', '.join(expected)})", "\n".join(lines))


def test_ra_trick_callouts(benchmark, bench_cache, bench_set):
    expected = ["CPU2006.gemsfdtd", "CPU2017.lbm", "CPU2006.zeusmp"]
    gains = benchmark.pedantic(
        _improvement_when_adding,
        args=("store_aware_regalloc", bench_set, bench_cache),
        rounds=1,
        iterations=1,
    )
    _report("Callouts — store-aware register allocation", gains, expected)
    ranked = [uid for uid, _ in sorted(gains.items(), key=lambda kv: -kv[1])]
    top = set(ranked[:6])
    present = [uid for uid in expected if uid in gains]
    if len(present) < 2:
        pytest.skip("callout benchmarks not in this subset")
    # The paper's spill-heavy benchmarks dominate the win list.
    assert sum(1 for uid in present if uid in top) >= 2


def test_livm_callouts(benchmark, bench_cache, bench_set):
    expected = [
        "CPU2017.exchange2",
        "CPU2017.leela",
        "SPLASH3.lu-cg",
        "SPLASH3.radix",
    ]
    gains = benchmark.pedantic(
        _improvement_when_adding,
        args=("induction_variable_merging", bench_set, bench_cache),
        rounds=1,
        iterations=1,
    )
    _report("Callouts — loop induction variable merging", gains, expected)
    ranked = [uid for uid, _ in sorted(gains.items(), key=lambda kv: -kv[1])]
    top = set(ranked[:8])
    present = [uid for uid in expected if uid in gains]
    if len(present) < 2:
        pytest.skip("callout benchmarks not in this subset")
    assert sum(1 for uid in present if uid in top) >= 2


def test_licm_callouts(benchmark, bench_cache, bench_set):
    expected = [
        "CPU2017.deepsjeng",
        "CPU2017.fotonik3d",
        "CPU2017.nab",
        "CPU2017.x264",
    ]
    gains = benchmark.pedantic(
        _improvement_when_adding,
        args=("licm_sinking", bench_set, bench_cache),
        rounds=1,
        iterations=1,
    )
    _report("Callouts — LICM checkpoint sinking", gains, expected)
    ranked = [uid for uid, _ in sorted(gains.items(), key=lambda kv: -kv[1])]
    top = set(ranked[:10])
    present = [uid for uid in expected if uid in gains]
    if len(present) < 2:
        pytest.skip("callout benchmarks not in this subset")
    assert sum(1 for uid in present if uid in top) >= 2
