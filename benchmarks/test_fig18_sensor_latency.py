"""Figure 18: worst-case detection latency vs number of deployed acoustic
sensors, for 2.0/2.5/3.0 GHz clocks on a 1 mm^2 die.

Paper anchors: 300 sensors @ 2.5 GHz -> ~10 cycles; 30 sensors -> ~30.
"""

from repro.harness.experiments import fig18_sensor_latency
from repro.sensors.acoustic import detection_latency_cycles, sensors_for_wcdl

from conftest import emit


def test_fig18_sensor_latency(benchmark):
    series = benchmark.pedantic(fig18_sensor_latency, rounds=1, iterations=1)
    lines = ["sensors".ljust(10) + "".join(f"{c:.1f}GHz".rjust(12) for c in sorted(series))]
    counts = [n for n, _ in series[2.5]]
    for idx, n in enumerate(counts):
        row = str(n).ljust(10)
        for clock in sorted(series):
            row += f"{series[clock][idx][1]:.1f}".rjust(12)
        lines.append(row)
    emit(
        "Figure 18 — detection latency (cycles) vs sensor count "
        "(paper: 10 cycles @ 300 sensors / 2.5 GHz)",
        "\n".join(lines),
    )
    # Anchors.
    assert 8 <= detection_latency_cycles(300, 2.5) <= 12
    assert 24 <= detection_latency_cycles(30, 2.5) <= 34
    # Monotone trends.
    for clock, points in series.items():
        latencies = [lat for _, lat in points]
        assert all(a > b for a, b in zip(latencies, latencies[1:]))
    # The inverse mapping is consistent.
    assert sensors_for_wcdl(10.5, 2.5) <= 320
