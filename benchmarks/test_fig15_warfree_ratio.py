"""Figure 15: ratio of detected WAR-free stores to all stores (including
checkpoints) for the ideal vs compact CLQ designs.

Paper: the ideal design detects ~10.6 percentage points more WAR-free
stores than the compact ranges.
"""

from repro.harness.experiments import fig14_fig15_clq_designs
from repro.harness.reporting import format_series_table

from conftest import emit


def test_fig15_warfree_ratio(benchmark, bench_cache, bench_set):
    result = benchmark.pedantic(
        fig14_fig15_clq_designs,
        args=(bench_set,),
        kwargs={"cache": bench_cache},
        rounds=1,
        iterations=1,
    )
    ideal = result["warfree_ratio"]["ideal"]
    compact = result["warfree_ratio"]["compact"]
    emit(
        "Figure 15 — WAR-free stores detected / all stores "
        "(paper: ideal ~10.6pp above compact)",
        format_series_table(
            [ideal, compact], value_format="{:.3f}", aggregate="mean"
        ),
    )
    # Per-benchmark: ideal detection dominates compact (conservativeness).
    for uid in ideal.per_benchmark:
        assert ideal.per_benchmark[uid] >= compact.per_benchmark[uid] - 1e-9
    # A visible fraction of stores bypasses verification.
    assert compact.mean > 0.05
