"""Benchmark the multi-lane sweep engine against the solo figure path.

Evaluates the full figure-suite design-point lattice twice, both times
from a completely cold in-memory cache (no persistent artifacts):

* ``solo``   — every timing point through ``simulate`` (one
  ``InOrderCore`` run per point, one functional execution per compiler
  config), the way the figure drivers worked before the engine;
* ``engine`` — the whole suite through ``figure_suite`` /
  ``run_sweep``: digest-level dedup of compiled programs, one shared
  decode pass per committed stream, K flat timing lanes per batch.

After both runs every design point is compared stat-for-stat (full
dataclass equality) between the two caches — the engine must be
byte-identical to the solo reference, not just faster. Results land in
``benchmarks/BENCH_sweep.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_sweep.py           # all 36
    PYTHONPATH=src python benchmarks/bench_sweep.py --quick   # 6-uid smoke
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

HERE = Path(__file__).resolve().parent
OUT_PATH = HERE / "BENCH_sweep.json"

os.environ.setdefault("REPRO_CACHE_DIR", "off")
sys.path.insert(0, str(HERE.parent / "src"))

from repro.compiler.config import turnpike_config  # noqa: E402
from repro.harness.experiments import (  # noqa: E402
    figure_suite,
    suite_pairs,
    suite_summary_configs,
)
from repro.harness.runner import RunCache, simulate  # noqa: E402
from repro.workloads.suites import all_profiles, quick_subset  # noqa: E402


def run_solo(uids: list[str], pairs: list) -> tuple[RunCache, float]:
    """Cold reference: every point via simulate, every summary solo."""
    cache = RunCache(persistent=None)
    start = time.perf_counter()
    for uid in uids:
        for compiler, hardware in pairs:
            simulate(uid, compiler, hardware, cache=cache)
        for config in suite_summary_configs():
            cache.prepared(uid, config).summary
        cache.prepared(uid, turnpike_config()).compiled  # fig26 sizes
        cache.baseline(uid).compiled
    return cache, time.perf_counter() - start


def run_engine(
    uids: list[str], workers: int | None
) -> tuple[RunCache, float]:
    """Cold engine run: the entire figure suite through run_sweep."""
    cache = RunCache(persistent=None)
    start = time.perf_counter()
    figure_suite(uids, cache=cache, workers=workers)
    return cache, time.perf_counter() - start


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="6-benchmark smoke sweep instead of the full 36",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="engine worker processes (default: sequential)",
    )
    parser.add_argument(
        "--out", default=str(OUT_PATH),
        help="where to write the JSON results",
    )
    args = parser.parse_args(argv)

    profiles = quick_subset() if args.quick else all_profiles()
    uids = sorted(p.uid for p in profiles)
    pairs = suite_pairs()
    points = len(uids) * len(pairs)
    print(
        f"lattice: {len(uids)} benchmarks x {len(pairs)} configs = "
        f"{points} timing points (+{len(suite_summary_configs())} summary "
        f"configs each)"
    )

    solo_cache, t_solo = run_solo(uids, pairs)
    print(f"solo  : {t_solo:7.1f}s  {points / t_solo:6.1f} points/s")
    engine_cache, t_engine = run_engine(uids, args.workers)
    print(f"engine: {t_engine:7.1f}s  {points / t_engine:6.1f} points/s")

    mismatches = 0
    for uid in uids:
        for compiler, hardware in pairs:
            a = simulate(uid, compiler, hardware, cache=solo_cache)
            b = simulate(uid, compiler, hardware, cache=engine_cache)
            if a != b:
                mismatches += 1
                print(f"MISMATCH {uid} {compiler.name} {hardware}")
    identical = mismatches == 0
    print(f"lanes byte-identical to solo: {identical} "
          f"({points - mismatches}/{points})")

    payload = {
        "suite": {
            "benchmarks": len(uids),
            "configs": len(pairs),
            "timing_points": points,
            "quick": args.quick,
            "workers": args.workers,
        },
        "seconds": {
            "solo": round(t_solo, 2),
            "engine": round(t_engine, 2),
        },
        "points_per_second": {
            "solo": round(points / t_solo, 1),
            "engine": round(points / t_engine, 1),
        },
        "speedup": round(t_solo / t_engine, 2),
        "byte_identical": identical,
        "python": platform.python_version(),
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    print(f"speedup: {payload['speedup']}x cold")
    return 0 if identical else 1


if __name__ == "__main__":
    sys.exit(main())
