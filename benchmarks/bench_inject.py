"""Benchmark the snapshot-accelerated fault-injection path.

Runs the same campaign three ways and reports injections/second:

* ``accel off``   — every injection simulates from cycle 0 (reference),
* ``accel cold``  — snapshot acceleration on, empty artifact cache, so
  the per-variant golden recordings are paid inside the measurement,
* ``accel warm``  — a second accelerated run that loads the golden
  records from the artifact cache written by the cold run.

All three aggregates must be byte-identical (the acceleration contract);
the script exits non-zero if they are not. Results are written to
``benchmarks/BENCH_inject.json`` next to this file.

Usage::

    PYTHONPATH=src python benchmarks/bench_inject.py            # full (bzip2, 200x4)
    PYTHONPATH=src python benchmarks/bench_inject.py --quick    # radix, 24x4 smoke
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

HERE = Path(__file__).resolve().parent
OUT_PATH = HERE / "BENCH_inject.json"


def _run(spec, accel, cache_dir):
    """One timed campaign run in a fresh interpreter state.

    The in-process golden memo (`_GOLDEN_CACHE`) and compile context are
    module-level, so cold/warm separation has to come from the on-disk
    cache alone; we clear the in-process memos between runs.
    """
    os.environ["REPRO_CACHE_DIR"] = cache_dir
    from repro.faults import campaign as campaign_mod

    campaign_mod._GOLDEN_CACHE.clear()
    start = time.perf_counter()
    report = campaign_mod.CampaignRunner(spec, accel=accel).run()
    elapsed = time.perf_counter() - start
    return report, elapsed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--uid", default=None, help="benchmark uid")
    parser.add_argument("--count", type=int, default=None)
    parser.add_argument("--seed", type=int, default=2024)
    parser.add_argument(
        "--quick", action="store_true",
        help="small radix campaign instead of the full bzip2 one",
    )
    parser.add_argument(
        "--out", default=str(OUT_PATH),
        help="where to write the JSON results",
    )
    args = parser.parse_args(argv)

    uid = args.uid or ("SPLASH3.radix" if args.quick else "CPU2006.bzip2")
    count = args.count or (24 if args.quick else 200)

    from repro.faults.campaign import AccelOptions, CampaignSpec

    spec = CampaignSpec(uid=uid, count=count, seed=args.seed)
    injections = spec.count * len(spec.variants)
    print(f"campaign: {uid}, {spec.count} injections x "
          f"{len(spec.variants)} variants = {injections} runs")

    results = {}
    with tempfile.TemporaryDirectory(prefix="bench-inject-") as cache_dir:
        report_off, t_off = _run(
            spec, AccelOptions(enabled=False), cache_dir="0"
        )
        results["accel_off"] = t_off
        print(f"accel off : {t_off:7.1f}s  {injections / t_off:6.1f} inj/s")

        report_cold, t_cold = _run(spec, AccelOptions(), cache_dir=cache_dir)
        results["accel_cold"] = t_cold
        print(f"accel cold: {t_cold:7.1f}s  {injections / t_cold:6.1f} inj/s")

        report_warm, t_warm = _run(spec, AccelOptions(), cache_dir=cache_dir)
        results["accel_warm"] = t_warm
        print(f"accel warm: {t_warm:7.1f}s  {injections / t_warm:6.1f} inj/s")

    identical = (
        report_off.to_json() == report_cold.to_json() == report_warm.to_json()
    )
    print(f"aggregates byte-identical: {identical}")

    payload = {
        "campaign": {
            "uid": uid,
            "count": spec.count,
            "seed": spec.seed,
            "variants": list(spec.variants),
            "targets": list(spec.targets),
            "injections": injections,
        },
        "seconds": {k: round(v, 2) for k, v in results.items()},
        "injections_per_second": {
            k: round(injections / v, 1) for k, v in results.items()
        },
        "speedup_vs_off": {
            "cold": round(results["accel_off"] / results["accel_cold"], 1),
            "warm": round(results["accel_off"] / results["accel_warm"], 1),
        },
        "byte_identical": identical,
        "python": platform.python_version(),
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    print(f"speedup: {payload['speedup_vs_off']['cold']}x cold, "
          f"{payload['speedup_vs_off']['warm']}x warm")
    return 0 if identical else 1


if __name__ == "__main__":
    sys.exit(main())
