"""Ablations of Turnpike design choices (beyond the paper's figures).

DESIGN.md calls out three implementation decisions whose cost/benefit
the paper leaves implicit; these benches quantify each on a benchmark
subset:

1. **color pool size** — the paper ships 4 colors per register; sweep
   1/2/4/8 to show the knee (fewer colors => checkpoint fallbacks to the
   store buffer; more buys nothing).
2. **compact-CLQ overflow policy** — recycling the oldest closed
   region's entry (our design) vs the paper-literal wipe-and-disable
   (Figure 13): recycling keeps the WAR-free release rate up when more
   regions are in flight than CLQ entries.
3. **checkpoint-aware scheduling** — re-measured in isolation on top of
   the otherwise-complete compiler (the inverse of Figure 21's additive
   order), quantifying the checkpoint data-hazard cost by itself.
"""

from dataclasses import replace

from repro.arch.config import ResilienceHardwareConfig
from repro.compiler.config import turnpike_config
from repro.harness.experiments import Series
from repro.harness.reporting import format_series_table
from repro.harness.runner import normalized_time, simulate

from conftest import emit

SUBSET = [
    "CPU2006.gcc",
    "CPU2006.mcf",
    "CPU2006.gemsfdtd",
    "CPU2017.exchange2",
    "CPU2017.lbm",
    "CPU2017.deepsjeng",
    "SPLASH3.radix",
    "SPLASH3.water-sp",
]


def test_ablation_color_pool(benchmark, bench_cache):
    compiler = turnpike_config()

    def run():
        out = {}
        for colors in (1, 2, 4, 8):
            series = Series(name=f"{colors}-color")
            hw = replace(
                ResilienceHardwareConfig.turnpike(wcdl=50), num_colors=colors
            )
            for uid in SUBSET:
                series.per_benchmark[uid] = normalized_time(
                    uid, compiler, hw, cache=bench_cache
                )
            out[colors] = series
        return out

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Ablation — checkpoint color pool size @ WCDL 50 "
        "(paper ships 4 colors)",
        format_series_table(
            [result[c] for c in sorted(result)], value_format="{:.3f}"
        ),
    )
    geos = {c: result[c].geomean for c in result}
    # Fewer colors can only hurt (more SB fallbacks).
    assert geos[1] >= geos[2] >= geos[4] - 1e-6
    # Diminishing returns: 2->4 buys several times more than 4->8 — the
    # knee justifying the paper's 4-color pool.
    gain_2_to_4 = geos[2] - geos[4]
    gain_4_to_8 = geos[4] - geos[8]
    assert gain_2_to_4 > 3 * max(gain_4_to_8, 0.0005)


def test_ablation_clq_overflow_policy(benchmark, bench_cache):
    compiler = turnpike_config()

    def run():
        out = {}
        for recycle, name in ((True, "recycle-oldest"), (False, "wipe+disable")):
            series = Series(name=name)
            hw = replace(
                ResilienceHardwareConfig.turnpike(wcdl=50),
                clq_recycling=recycle,
            )
            for uid in SUBSET:
                stats = simulate(uid, compiler, hw, cache=bench_cache)
                series.per_benchmark[uid] = (
                    stats.warfree_released / max(1, stats.stores_total)
                )
            out[name] = series
        return out

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Ablation — compact-CLQ overflow policy @ WCDL 50 "
        "(WAR-free release rate; higher is better)",
        format_series_table(
            list(result.values()), value_format="{:.3f}", aggregate="mean"
        ),
    )
    # Recycling detects at least as many WAR-free stores everywhere.
    for uid in SUBSET:
        assert (
            result["recycle-oldest"].per_benchmark[uid]
            >= result["wipe+disable"].per_benchmark[uid] - 1e-9
        )


def test_ablation_scheduling_only(benchmark, bench_cache):
    full = turnpike_config()
    no_sched = replace(full, instruction_scheduling=False, name="tp-nosched")

    def run():
        out = {}
        hw = ResilienceHardwareConfig.turnpike(wcdl=10)
        for name, compiler in (("turnpike", full), ("no scheduling", no_sched)):
            series = Series(name=name)
            for uid in SUBSET:
                series.per_benchmark[uid] = normalized_time(
                    uid, compiler, hw, cache=bench_cache
                )
            out[name] = series
        return out

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Ablation — removing checkpoint-aware scheduling from full "
        "Turnpike @ WCDL 10",
        format_series_table(list(result.values()), value_format="{:.3f}"),
    )
    # Scheduling helps (hides checkpoint data hazards) on net.
    assert (
        result["turnpike"].geomean <= result["no scheduling"].geomean + 0.003
    )
