"""Figure 20: Turnstile's normalized execution time for WCDL 10-50.

Paper: 29%-84% average overhead — an order of magnitude above Turnpike,
with several benchmarks beyond 2x at long WCDLs.
"""

from repro.harness.experiments import fig19_turnpike_wcdl, fig20_turnstile_wcdl
from repro.harness.reporting import format_series_table

from conftest import emit


def test_fig20_turnstile_wcdl(benchmark, bench_cache, bench_set):
    result = benchmark.pedantic(
        fig20_turnstile_wcdl,
        args=(bench_set,),
        kwargs={"cache": bench_cache},
        rounds=1,
        iterations=1,
    )
    emit(
        "Figure 20 — Turnstile normalized exec time, WCDL 10..50 "
        "(paper: geomean 1.29 @ DL10 .. 1.84 @ DL50)",
        format_series_table([result[w] for w in sorted(result)]),
    )
    geos = {w: result[w].geomean for w in result}
    # Bands: substantial overhead that grows with WCDL.
    assert geos[10] > 1.10
    assert geos[50] > 1.5
    ordered = [geos[w] for w in sorted(geos)]
    assert all(a <= b + 1e-9 for a, b in zip(ordered, ordered[1:]))
    # Cross-check vs Figure 19: Turnstile loses to Turnpike everywhere.
    turnpike = fig19_turnpike_wcdl(bench_set, wcdls=(10, 50), cache=bench_cache)
    for w in (10, 50):
        for uid in result[w].per_benchmark:
            assert (
                turnpike[w].per_benchmark[uid]
                <= result[w].per_benchmark[uid] + 1e-6
            )
