"""Shared infrastructure for the figure-regeneration benchmarks.

Every module under benchmarks/ regenerates one table or figure of the
paper on the full 36-benchmark suite (set ``REPRO_BENCH_SUBSET=quick``
for a fast 6-benchmark smoke sweep) and prints the same rows/series the
paper reports. Artefacts (compiled programs, traces, baseline cycles)
are shared through one session-scoped cache so the whole directory runs
in a few minutes.

The session cache is backed by the persistent on-disk artifact cache
(``REPRO_CACHE_DIR``; set it to ``0`` to force cold recomputation), so a
second figure sweep starts warm. Set ``REPRO_BENCH_WORKERS=N`` (0 = one
per CPU) to pre-warm the common benchmark x scheme matrix across N
processes before the figure modules run.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.harness.runner import RunCache, default_benchmarks, warm_suite
from repro.workloads.suites import quick_subset

FIGURES_PATH = Path(__file__).resolve().parent / "figures_output.txt"


@pytest.fixture(scope="session")
def bench_cache(bench_set) -> RunCache:
    workers_env = os.environ.get("REPRO_BENCH_WORKERS")
    if workers_env is not None:
        try:
            workers = int(workers_env)
        except ValueError:
            workers = 1
        if workers <= 0:
            workers = os.cpu_count() or 1
        if workers > 1:
            # Shard the (benchmark, scheme) matrix across processes; the
            # results land in the persistent cache, which the session
            # cache reads through on first access.
            warm_suite(bench_set, workers=workers)
    return RunCache()


@pytest.fixture(scope="session")
def bench_set() -> list[str]:
    if os.environ.get("REPRO_BENCH_SUBSET") == "quick":
        return [p.uid for p in quick_subset()]
    return default_benchmarks()


@pytest.fixture(scope="session", autouse=True)
def _fresh_figures_file():
    """Start each benchmark session with an empty figures log."""
    FIGURES_PATH.write_text("")
    yield


def emit(title: str, text: str) -> None:
    """Print a figure's table (visible with -s) and append it to
    ``benchmarks/figures_output.txt`` so the regenerated figures survive
    pytest's output capture."""
    rendered = f"\n### {title}\n{text}\n"
    print(rendered, end="")
    with FIGURES_PATH.open("a") as fh:
        fh.write(rendered)
