"""Figure 26: average dynamic region size and binary code growth.

Paper: ~11.2 instructions per region on average; code size grows 0.4%
on average (up to ~8% for gcc's many small regions).
"""

from repro.harness.experiments import fig26_region_codesize
from repro.harness.reporting import format_mapping_table

from conftest import emit


def test_fig26_region_codesize(benchmark, bench_cache, bench_set):
    data = benchmark.pedantic(
        fig26_region_codesize,
        args=(bench_set,),
        kwargs={"cache": bench_cache},
        rounds=1,
        iterations=1,
    )
    emit(
        "Figure 26 — region size (instr) and code growth "
        "(paper: ~11.2 instr/region, +0.4% code average)",
        format_mapping_table(
            {k: (v[0], 100 * v[1]) for k, v in data.items()},
            headers=("region size", "growth %"),
        ),
    )
    sizes = [size for size, _ in data.values()]
    growths = [growth for _, growth in data.values()]
    mean_size = sum(sizes) / len(sizes)
    # Regions are small (a handful to a few dozen instructions); LICM's
    # relaxed store-free loops stretch a few benchmarks past the paper's
    # ~11-instruction average.
    assert 4.0 < mean_size < 64.0
    # Code growth is modest but real (checkpoints are instructions here;
    # the paper's smaller growth excludes metadata-encoded boundaries).
    assert all(0.0 <= g for g in growths)
    assert sum(growths) / len(growths) < 1.0
