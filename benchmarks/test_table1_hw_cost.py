"""Table 1: area and dynamic-energy cost of Turnpike's hardware vs the
store buffer, from the calibrated CAM/RAM array model at 22 nm.

Paper: Turnpike (color maps + 2-entry CLQ) adds 9.8% area and 9.7%
energy of a 4-entry SB; a 40-entry SB would cost ~5x the 4-entry one.
"""

import pytest

from repro.harness.experiments import table1_hw_cost
from repro.harness.reporting import format_table1

from conftest import emit


def test_table1_hw_cost(benchmark):
    table = benchmark.pedantic(table1_hw_cost, rounds=1, iterations=1)
    emit("Table 1 — hardware cost comparison", format_table1(table))

    rows = {row.name: row for row in table.rows()}
    sb4 = rows["4-entry SB (CAM)"]
    assert sb4.area_um2 == pytest.approx(621.28, rel=0.01)
    assert sb4.dynamic_energy_pj == pytest.approx(0.43099, rel=0.01)

    area_ratio, energy_ratio = table.turnpike_vs_sb4
    assert area_ratio == pytest.approx(0.098, abs=0.012)
    assert energy_ratio == pytest.approx(0.097, abs=0.012)

    area_ratio, energy_ratio = table.sb40_vs_sb4
    assert area_ratio == pytest.approx(5.04, rel=0.03)
    assert energy_ratio == pytest.approx(4.91, rel=0.05)
