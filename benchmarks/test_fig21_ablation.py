"""Figure 21: the optimization ablation at the default 10-cycle WCDL.

Paper progression of average overheads:
Turnstile 29% -> WAR-free 25% -> Fast Release 22% -> +Pruning 12% ->
+LICM 10% -> +Inst Sched 7% -> +RA Trick 2% -> full Turnpike 0%.
"""

from repro.harness.experiments import fig21_ablation
from repro.harness.reporting import format_series_table

from conftest import emit


def test_fig21_ablation(benchmark, bench_cache, bench_set):
    series = benchmark.pedantic(
        fig21_ablation,
        args=(bench_set,),
        kwargs={"cache": bench_cache},
        rounds=1,
        iterations=1,
    )
    emit(
        "Figure 21 — optimization ablation @ WCDL 10 "
        "(paper: 1.29 / 1.25 / 1.22 / 1.12 / 1.10 / 1.07 / 1.02 / 1.00)",
        format_series_table(series),
    )
    geos = {s.name: s.geomean for s in series}
    # Endpoints: Turnstile worst, Turnpike best.
    assert geos["Turnstile"] == max(geos.values())
    assert geos["Turnpike"] <= min(geos.values()) + 0.03
    # Each hardware step helps.
    assert geos["WAR-free Checking"] <= geos["Turnstile"] + 1e-6
    assert geos["Fast Release"] <= geos["WAR-free Checking"] + 1e-6
    # The compiler stack (pruning onward) gives the large drop.
    assert geos["Fast Release + Pruning"] < geos["Fast Release"]
    # Full Turnpike lands near zero overhead.
    assert geos["Turnpike"] < 1.10
