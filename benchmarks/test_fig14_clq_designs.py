"""Figure 14: run-time overhead of the ideal (infinite, address-matching)
CLQ vs Turnpike's compact 2-entry range-based CLQ, with only the hardware
fast release enabled (no compiler optimizations).

Paper: the compact design loses only ~3% vs the ideal one.
"""

from repro.harness.experiments import fig14_fig15_clq_designs
from repro.harness.reporting import format_series_table

from conftest import emit


def test_fig14_clq_designs(benchmark, bench_cache, bench_set):
    result = benchmark.pedantic(
        fig14_fig15_clq_designs,
        args=(bench_set,),
        kwargs={"cache": bench_cache},
        rounds=1,
        iterations=1,
    )
    ideal = result["overhead"]["ideal"]
    compact = result["overhead"]["compact"]
    emit(
        "Figure 14 — ideal vs compact CLQ overhead "
        "(paper: compact within ~3% of ideal)",
        format_series_table([ideal, compact], value_format="{:.3f}"),
    )
    assert ideal.geomean <= compact.geomean + 1e-6
    assert compact.geomean - ideal.geomean < 0.05
