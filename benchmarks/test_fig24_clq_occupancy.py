"""Figure 24: dynamic CLQ entries populated at run time (demand study).

Paper: the average number of populated entries is ~1, the maximum 3-4
for some applications — which is why the compact CLQ ships with 2
entries.
"""

from repro.harness.experiments import fig24_clq_occupancy
from repro.harness.reporting import format_mapping_table

from conftest import emit


def test_fig24_clq_occupancy(benchmark, bench_cache, bench_set):
    occupancy = benchmark.pedantic(
        fig24_clq_occupancy,
        args=(bench_set,),
        kwargs={"cache": bench_cache},
        rounds=1,
        iterations=1,
    )
    emit(
        "Figure 24 — dynamic CLQ entries populated "
        "(paper: average ~1, maximum 3-4)",
        format_mapping_table(
            occupancy, headers=("average", "maximum"), value_format="{:.2f}"
        ),
    )
    avgs = [avg for avg, _ in occupancy.values()]
    maxes = [peak for _, peak in occupancy.values()]
    # Demand is a few entries on average; short-region benchmarks keep
    # more regions in flight than the paper's ~11-instruction regions, so
    # the bound here is looser than the paper's 3-4 maximum.
    assert sum(avgs) / len(avgs) < 4.5
    assert max(maxes) <= 12
    assert max(maxes) >= 2  # some benchmark keeps multiple regions in flight
