"""Figure 4: impact of store buffer size on inserted checkpoints.

Paper: eager checkpointing is 4.1% of dynamic instructions with a
40-entry SB but ~15% with the 4-entry SB of in-order cores.
"""

from repro.harness.experiments import fig04_checkpoint_ratio
from repro.harness.reporting import format_series_table

from conftest import emit


def test_fig04_checkpoint_ratio(benchmark, bench_cache, bench_set):
    result = benchmark.pedantic(
        fig04_checkpoint_ratio,
        args=(bench_set,),
        kwargs={"cache": bench_cache},
        rounds=1,
        iterations=1,
    )
    emit(
        "Figure 4 — checkpoint ratio vs SB size "
        "(paper: 4.1% @ SB-40, 14.98% @ SB-4)",
        format_series_table(
            [result[40], result[4]],
            value_format="{:.3f}",
            aggregate="mean",
        ),
    )
    # Shape: shrinking the SB meaningfully increases checkpoint traffic
    # (the paper sees 3.65x; our loop-dominated synthetics keep the
    # per-iteration IV checkpoints in both configs, compressing the
    # factor — see EXPERIMENTS.md).
    assert result[4].mean > 1.15 * result[40].mean
    # Bands: small-SB ratio lands in the paper's regime.
    assert 0.05 < result[4].mean < 0.30
